"""Command-line interface: regenerate any paper experiment from a shell.

Examples::

    python -m repro list                 # what can be regenerated
    python -m repro fig 3                # input-sensitivity bars
    python -m repro table 2              # fixed costs
    python -m repro quickstart           # one OCOLOS cycle on MySQL-like
    python -m repro fig 5 --transactions 300

Experiment output is the same row/series text the benchmark suite prints;
heavy figures can take minutes (they execute the full pipelines in the VM).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.reporting import format_series, format_table


def _fig1(_args) -> None:
    from repro.analysis.l1i_history import capacity_growth_factor, l1i_capacity_table

    print(
        format_table(
            ["year", "vendor", "microarchitecture", "L1i KiB"],
            l1i_capacity_table(),
            title="Fig 1: per-core L1i capacity over time",
        )
    )
    print(f"\nIntel growth: {capacity_growth_factor('Intel'):.2f}x, "
          f"AMD growth: {capacity_growth_factor('AMD'):.2f}x")


def _fig3(args) -> None:
    from repro.harness.experiments import fig3_input_sensitivity

    result = fig3_input_sensitivity(transactions=args.transactions)
    print(
        format_table(
            ["training input", "tps", "vs original", "vs best"],
            [
                [r.train_input, r.tps, r.speedup_vs_original, r.relative_to_best]
                for r in result.rows
            ],
            title=f"Fig 3: BOLTed MySQL running {result.run_input}",
        )
    )
    print(f"\noriginal: {result.original_tps:,.0f} tps; "
          f"OCOLOS: {result.ocolos_tps:,.0f} tps "
          f"({result.ocolos_tps / result.best_tps:.3f} of best)")


def _fig5(args) -> None:
    from repro.harness.experiments import fig5_main_performance

    rows = fig5_main_performance(transactions=args.transactions)
    print(
        format_table(
            ["workload", "input", "orig tps", "OCOLOS", "BOLT oracle", "PGO", "BOLT avg"],
            [
                [r.workload, r.input_name, r.original_tps, r.ocolos,
                 r.bolt_oracle, r.pgo_oracle, r.bolt_average]
                for r in rows
            ],
            title="Fig 5: speedup over original",
        )
    )


def _fig6(args) -> None:
    from repro.harness.experiments import fig6_profile_duration

    rows = fig6_profile_duration(transactions=args.transactions)
    print(
        format_series(
            "profile seconds",
            ["samples", "OCOLOS speedup", "BOLT speedup"],
            [[r.duration_seconds, r.samples, r.ocolos_speedup, r.bolt_speedup] for r in rows],
            title="Fig 6: speedup vs profiling duration",
        )
    )


def _fig7(_args) -> None:
    from repro.harness.timeline import fig7_timeline

    result = fig7_timeline()
    bounds = dict(result.region_bounds)
    print(
        format_series(
            "second",
            ["tps", "p95 ms", "region"],
            [
                [p.second, p.tps, p.p95_ms, bounds.get(p.second, "")]
                for p in result.points
                if p.second in bounds or p.second % 10 == 0
            ],
            title="Fig 7: throughput timeline (sampled rows)",
        )
    )
    warm, worst, post = result.p95_summary()
    print(f"\npause {result.pause_seconds * 1000:.0f} ms; "
          f"p95 {warm:.2f} -> {worst:.2f} -> {post:.2f} ms; "
          f"speedup {result.speedup:.2f}x")


def _fig8(args) -> None:
    from repro.harness.experiments import fig8_frontend_metrics

    rows = fig8_frontend_metrics(transactions=args.transactions)
    print(
        format_table(
            ["input", "variant", "L1i MPKI", "iTLB MPKI", "taken PKI", "mispredict PKI"],
            [
                [r.input_name, r.variant, r.l1i_mpki, r.itlb_mpki,
                 r.taken_branch_pki, r.mispredict_pki]
                for r in rows
            ],
            title="Fig 8: front-end events per 1,000 instructions (MySQL)",
        )
    )


def _fig9(args) -> None:
    from repro.analysis.regression import fit_benefit_classifier
    from repro.harness.experiments import fig9_topdown_points

    points = fig9_topdown_points(transactions=args.transactions)
    fit = fit_benefit_classifier(
        [(p.frontend_latency, p.retiring, p.benefits) for p in points]
    )
    print(
        format_table(
            ["workload", "input", "FE latency %", "retiring %", "speedup", "benefits"],
            [
                [p.workload, p.input_name, p.frontend_latency, p.retiring,
                 p.ocolos_speedup, p.benefits]
                for p in points
            ],
            title="Fig 9: TopDown metrics vs OCOLOS benefit",
        )
    )
    print(f"\nlinear classifier accuracy: {fit.accuracy:.0%}")


def _table1(args) -> None:
    from repro.harness.experiments import table1_characterization

    cols = table1_characterization(transactions=args.transactions)
    print(
        format_table(
            ["workload", "functions", "v-tables", ".text MiB", "reordered",
             "on stack", "ptrs changed", "RSS orig", "RSS BOLT", "RSS OCOLOS"],
            [
                [c.workload, c.functions, c.vtables, c.text_mib,
                 c.avg_funcs_reordered, c.avg_funcs_on_stack,
                 c.avg_call_sites_changed, c.max_rss_original_mib,
                 c.max_rss_bolt_mib, c.max_rss_ocolos_mib]
                for c in cols
            ],
            title="Table I: benchmark characterization (scaled)",
        )
    )


def _table2(args) -> None:
    from repro.harness.experiments import table2_fixed_costs

    cols = table2_fixed_costs(transactions=args.transactions)
    print(
        format_table(
            ["workload", "perf2bolt s", "llvm-bolt s", "replacement s"],
            [
                [c.workload, c.perf2bolt_seconds, c.llvm_bolt_seconds,
                 c.replacement_seconds]
                for c in cols
            ],
            title="Table II: fixed costs of code replacement",
        )
    )


def _quickstart(_args) -> None:
    from repro.harness.runner import launch, measure, run_ocolos_pipeline
    from repro.workloads.mysql import mysql_inputs, mysql_like

    workload = mysql_like()
    spec = mysql_inputs(workload)["oltp_read_only"]
    baseline = measure(launch(workload, spec, seed=2, with_agent=False), transactions=400)
    process, _ocolos, report = run_ocolos_pipeline(workload, spec, seed=2)
    process.run(max_transactions=600)
    optimized = measure(process, transactions=400, warmup=0)
    print(f"original: {baseline.tps:,.0f} tps | OCOLOS: {optimized.tps:,.0f} tps | "
          f"speedup {optimized.tps / baseline.tps:.2f}x | "
          f"pause {report.pause_seconds * 1000:.1f} ms")


FIGS: Dict[int, Callable] = {
    1: _fig1, 3: _fig3, 5: _fig5, 6: _fig6, 7: _fig7, 8: _fig8, 9: _fig9,
}
TABLES: Dict[int, Callable] = {1: _table1, 2: _table2}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OCOLOS reproduction: regenerate paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list regenerable experiments")
    sub.add_parser("quickstart", help="one OCOLOS cycle on MySQL-like")

    fig = sub.add_parser("fig", help="regenerate a figure")
    fig.add_argument("number", type=int, choices=sorted(FIGS))
    fig.add_argument("--transactions", type=int, default=500)

    table = sub.add_parser("table", help="regenerate a table")
    table.add_argument("number", type=int, choices=sorted(TABLES))
    table.add_argument("--transactions", type=int, default=500)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("figures : " + ", ".join(f"fig {n}" for n in sorted(FIGS)))
        print("tables  : " + ", ".join(f"table {n}" for n in sorted(TABLES)))
        print("other   : quickstart")
        print("\nfig 10 (BAM) and the ablations run via the benchmark suite:")
        print("  pytest benchmarks/ --benchmark-only")
        return 0
    if args.command == "quickstart":
        _quickstart(args)
        return 0
    if args.command == "fig":
        FIGS[args.number](args)
        return 0
    if args.command == "table":
        TABLES[args.number](args)
        return 0
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
