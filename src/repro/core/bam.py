"""BAM: Batch Accelerator Mode (paper §V-A, §VI-D).

For short-running processes, OCOLOS's fixed costs cannot amortise, so BAM
optimizes *across* process invocations of a batch workload instead of inside
one process: it intercepts ``exec`` calls (LD_PRELOAD), runs the first
``profiles_needed`` invocations of the target binary under perf, then BOLTs
in the background, and rewrites subsequent ``exec`` calls to launch the
optimized binary.  There is no stop-the-world component — switching binaries
costs nothing at the next ``exec``.

The build driver schedules invocations on ``parallel_jobs`` workers
(``make -j``).  Each invocation's duration is *measured* by actually
executing the compiler-like program in the VM (per distinct source-class ×
binary, cached); profiles are real LBR collections from the profiled runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.binary.binaryfile import Binary
from repro.bolt.optimizer import BoltOptions, BoltResult, run_bolt
from repro.core.costs import CostModel
from repro.errors import ReplacementError, WorkloadError
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile
from repro.profiling.profile import BoltProfile
from repro.vm.process import Process
from repro.workloads.clangbuild import ClangBuildWorkload, N_SOURCE_CLASSES
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.inputs import InputSpec


@dataclass
class BamConfig:
    """BAM's configuration file analogue.

    ``bolt_invocation_equivalents`` calibrates how long the background
    perf2bolt + BOLT jobs take *relative to one compiler invocation*.  In the
    paper's clang build, BOLTing clang costs a handful of average compiler
    invocations' worth of *wall* time (it runs while many jobs execute in
    parallel); expressing the cost this way keeps the
    Fig 10 trade-off meaningful across simulator time scales.  A small extra
    term per collected profile models perf2bolt's record-processing time.
    """

    target_binary: str
    profiles_needed: int = 5
    perf_period: int = 1500
    perf_overhead: float = 0.14
    bolt_invocation_equivalents: float = 3.0
    perf2bolt_per_profile_equivalents: float = 0.4


@dataclass
class InvocationRecord:
    """One compiler execution in the build timeline."""

    index: int
    source_class: int
    mode: str  # "profiled" | "original" | "optimized"
    start_seconds: float
    duration_seconds: float

    @property
    def end_seconds(self) -> float:
        """Completion wall time."""
        return self.start_seconds + self.duration_seconds


@dataclass
class BamReport:
    """Outcome of one accelerated build."""

    total_seconds: float
    invocations: List[InvocationRecord] = field(default_factory=list)
    profiles_collected: int = 0
    bolt_started_at: Optional[float] = None
    bolt_ready_at: Optional[float] = None
    optimized_invocations: int = 0

    def mode_counts(self) -> Dict[str, int]:
        """Invocations per execution mode."""
        out: Dict[str, int] = {}
        for rec in self.invocations:
            out[rec.mode] = out.get(rec.mode, 0) + 1
        return out


class BatchAcceleratorMode:
    """Accelerates a batch build of one target binary."""

    def __init__(
        self,
        compiler: SyntheticWorkload,
        original: Binary,
        config: BamConfig,
        *,
        cost_model: Optional[CostModel] = None,
        seed: int = 9,
    ) -> None:
        if config.target_binary != original.name:
            raise WorkloadError(
                f"BAM config names {config.target_binary!r} but the build "
                f"runs {original.name!r}"
            )
        self.compiler = compiler
        self.original = original
        self.config = config
        self.cost_model = cost_model or CostModel(compiler.params.scale)
        self.seed = seed
        self._duration_cache: Dict[Tuple[str, int, bool], float] = {}

    # ------------------------------------------------------------------
    # single-invocation execution
    # ------------------------------------------------------------------

    def run_invocation(
        self,
        binary: Binary,
        input_spec: InputSpec,
        *,
        profiled: bool = False,
        seed: int = 0,
    ) -> Tuple[float, Optional[PerfSession]]:
        """Execute one compiler run to completion in the VM.

        Returns:
            ``(wall_seconds, perf_session_or_None)``.
        """
        process = Process(
            binary, self.compiler.program, input_spec, n_threads=1, seed=seed
        )
        session: Optional[PerfSession] = None
        if profiled:
            session = PerfSession(
                period=self.config.perf_period, overhead=self.config.perf_overhead
            )
            session.attach(process)
        delta = process.run(max_instructions=50_000_000)  # runs to HALT
        if process.runnable_threads():
            raise WorkloadError("compiler invocation did not terminate")
        if session is not None:
            session.detach()
        return process.wall_seconds(delta), session

    def _invocation_duration(
        self, binary: Binary, source_class: int, profiled: bool
    ) -> float:
        """Measured (cached per source class × binary × mode) duration."""
        key = (binary.name, source_class, profiled)
        cached = self._duration_cache.get(key)
        if cached is not None:
            return cached
        spec = self._source_input(source_class)
        seconds, _ = self.run_invocation(
            binary, spec, profiled=profiled, seed=self.seed + source_class
        )
        self._duration_cache[key] = seconds
        return seconds

    def _source_input(self, source_class: int) -> InputSpec:
        from repro.workloads.clangbuild import source_file_input

        return source_file_input(self.compiler, source_class)

    # ------------------------------------------------------------------
    # profile collection + BOLT
    # ------------------------------------------------------------------

    def collect_profiles(self, n: int) -> Tuple[BoltProfile, int]:
        """Actually profile the first ``n`` invocations.

        Returns:
            ``(aggregated profile, total LBR records)``.
        """
        aggregate = BoltProfile()
        records = 0
        for k in range(n):
            spec = self._source_input(k % N_SOURCE_CLASSES)
            _seconds, session = self.run_invocation(
                self.original, spec, profiled=True, seed=self.seed + 100 + k
            )
            profile, stats = extract_profile(session.samples, self.original)
            aggregate.merge(profile)
            records += stats.records
        return aggregate, records

    def mean_invocation_seconds(self) -> float:
        """Average original-binary invocation duration across source classes."""
        durations = [
            self._invocation_duration(self.original, cls, False)
            for cls in range(N_SOURCE_CLASSES)
        ]
        return sum(durations) / len(durations)

    def bolt_from_profiles(self, n: int) -> Tuple[BoltResult, float]:
        """BOLT the target using profiles of ``n`` invocations.

        Returns:
            ``(bolt result, background seconds for perf2bolt + BOLT)`` —
            background time is calibrated in invocation equivalents (see
            :class:`BamConfig`).
        """
        profile, _records = self.collect_profiles(n)
        result = run_bolt(
            self.compiler.program,
            self.original,
            profile,
            options=BoltOptions(),
            compiler_options=self.compiler.options,
        )
        mean = self.mean_invocation_seconds()
        seconds = mean * (
            self.config.bolt_invocation_equivalents
            + self.config.perf2bolt_per_profile_equivalents * n
        )
        return result, seconds

    # ------------------------------------------------------------------
    # build scheduling
    # ------------------------------------------------------------------

    def run_build(self, build: ClangBuildWorkload) -> BamReport:
        """Drive a full build under BAM interception.

        Invocations are scheduled onto ``build.parallel_jobs`` workers in
        order.  The first ``profiles_needed`` run under perf; once the last
        of them finishes, BOLT starts in the background and completes after
        its modelled duration; every invocation exec'd after that uses the
        optimized binary.
        """
        n_profiles = self.config.profiles_needed
        bolt_result, bolt_seconds = self.bolt_from_profiles(n_profiles)
        optimized = bolt_result.binary

        report = BamReport(total_seconds=0.0, profiles_collected=n_profiles)
        workers: List[float] = [0.0] * build.parallel_jobs  # next-free time
        profiled_done = 0
        profiling_finished_at = 0.0
        bolt_ready_at: Optional[float] = None

        for index in range(build.n_invocations):
            start = min(workers)
            widx = workers.index(start)
            source_class = index % N_SOURCE_CLASSES
            if profiled_done < n_profiles:
                mode = "profiled"
                duration = self._invocation_duration(self.original, source_class, True)
                profiled_done += 1
                if profiled_done == n_profiles:
                    profiling_finished_at = start + duration
                    bolt_ready_at = profiling_finished_at + bolt_seconds
                    report.bolt_started_at = profiling_finished_at
                    report.bolt_ready_at = bolt_ready_at
            elif bolt_ready_at is not None and start >= bolt_ready_at:
                mode = "optimized"
                duration = self._invocation_duration(optimized, source_class, False)
                report.optimized_invocations += 1
            else:
                mode = "original"
                duration = self._invocation_duration(self.original, source_class, False)
            record = InvocationRecord(
                index=index,
                source_class=source_class,
                mode=mode,
                start_seconds=start,
                duration_seconds=duration,
            )
            report.invocations.append(record)
            workers[widx] = record.end_seconds

        report.total_seconds = max(workers)
        return report

    def baseline_build_seconds(self, build: ClangBuildWorkload) -> float:
        """Build time with the original compiler, no BAM."""
        workers = [0.0] * build.parallel_jobs
        for index in range(build.n_invocations):
            start = min(workers)
            widx = workers.index(start)
            duration = self._invocation_duration(
                self.original, index % N_SOURCE_CLASSES, False
            )
            workers[widx] = start + duration
        return max(workers)

    def ideal_build_seconds(self, build: ClangBuildWorkload, n_profiles: int) -> float:
        """Lower-bound build: a binary BOLTed from ``n_profiles`` profiles is
        available from the very start and profiling costs nothing (the green
        curve of Fig 10)."""
        bolt_result, _ = self.bolt_from_profiles(n_profiles)
        optimized = bolt_result.binary
        workers = [0.0] * build.parallel_jobs
        for index in range(build.n_invocations):
            start = min(workers)
            widx = workers.index(start)
            duration = self._invocation_duration(
                optimized, index % N_SOURCE_CLASSES, False
            )
            workers[widx] = start + duration
        return max(workers)
