"""The stop-the-world code replacement sequence (paper Fig 4a, steps 3-6).

``CodeReplacer.replace`` performs, against a *paused* process:

1. inject the BOLT generation's code at its linked addresses (step 3);
2. patch v-table slots of moved functions (step 4);
3. unwind all stacks, derive the stack-live ``C_0`` functions, and patch the
   direct call sites inside them (step 4 continued);
4. register the generation with the function-pointer map so
   ``wrapFuncPtrCreation`` keeps the ``C_0`` invariant (step 4);
5. resume (step 6).

``C_0`` code is never moved or removed — every untracked code pointer
(function pointers in heap/registers, return addresses, saved PCs) keeps
working, merely running unoptimized code until a patched call or v-table
steers execution back into the new generation (design principles #1 and #2).

With ``osr=True`` the replacer first *transfers* live frames of moved
functions onto the new layout through :mod:`repro.osr` (the paused PC is a
safe point), so a never-returning dispatch loop runs optimized code
immediately instead of being pinned behind call-site patches.  Call-site
pinning survives as the fallback rung for frames OSR cannot map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.binary.binaryfile import Binary
from repro.bolt.optimizer import BoltResult
from repro.core.costs import CostModel, FixedCosts
from repro.core.funcptr_map import FunctionPointerMap
from repro.core.injector import CodeInjector, InjectionReport
from repro.core.patcher import CallSite, PatchReport, PointerPatcher
from repro.errors import ReplacementError
from repro.obs import trace as _trace
from repro.vm.process import Process
from repro.vm.ptrace import PtraceController
from repro.vm.unwind import AddressIndex, stack_live_functions


@dataclass
class ReplacementReport:
    """Everything one replacement did, plus its modelled pause time."""

    generation: int
    injection: InjectionReport = field(default_factory=InjectionReport)
    patches: PatchReport = field(default_factory=PatchReport)
    stack_live_count: int = 0
    #: stack-live *moved* functions still anchored to old code after the
    #: pause — what OSR drives to zero (without OSR: all moved live ones).
    pinned_stack_live: int = 0
    pause_seconds: float = 0.0
    trampolines: Optional[object] = None  # TrampolineReport when enabled
    osr: Optional[object] = None  # OsrReport when the osr ladder ran

    @property
    def pointer_writes(self) -> int:
        """Total pointers rewritten during the pause."""
        writes = self.patches.vtable_slots_patched + self.patches.call_sites_patched
        if self.trampolines is not None:
            writes += self.trampolines.installed
        if self.osr is not None:
            writes += self.osr.frames_transferred
        return writes


class CodeReplacer:
    """Performs single-shot online code replacement on a target process."""

    def __init__(
        self,
        process: Process,
        original: Binary,
        *,
        call_sites: Optional[Dict[str, List[CallSite]]] = None,
        cost_model: Optional[CostModel] = None,
        patch_all_calls: bool = False,
        fp_map: Optional[FunctionPointerMap] = None,
        trampolines: bool = False,
        osr: bool = False,
    ) -> None:
        """
        Args:
            process: the running target (must have the preload agent).
            original: the ``C_0`` binary the process was launched from.
            call_sites: pre-scanned direct call sites (scanned offline here
                if not provided — doing it in advance is what the real system
                does to keep the pause short).
            cost_model: pause-time model; defaults to unscaled.
            patch_all_calls: patch direct calls in *every* ``C_0`` function
                instead of only stack-live ones (the paper's rejected
                variant, kept for the ablation bench).
            trampolines: additionally overwrite moved ``C_0`` entries with
                jumps to their new versions, so *every* invocation reaches
                optimized code (the paper's security/debugging variant,
                §IV-B).
            osr: transfer live frames of moved functions onto the new
                layout (:mod:`repro.osr`) before falling back to call-site
                pinning for whatever could not be mapped.
        """
        self.process = process
        self.original = original
        self.ptrace = PtraceController(process)
        self.patcher = PointerPatcher(self.ptrace, original, call_sites)
        self.fp_map = fp_map if fp_map is not None else FunctionPointerMap(original)
        self.cost_model = cost_model or CostModel()
        self.patch_all_calls = patch_all_calls
        self.trampolines = trampolines
        self.osr = osr
        self.history: List[ReplacementReport] = []

    def replace(self, bolt_result: BoltResult) -> ReplacementReport:
        """Replace the process's hot code with ``bolt_result``'s generation.

        Raises:
            ReplacementError: if the generation does not follow the
                process's current one, or injection/patching fails.
        """
        bolted = bolt_result.binary
        expected = self.process.replacement_generation + 1
        if bolted.bolt_generation != expected:
            raise ReplacementError(
                f"expected generation {expected}, got {bolted.bolt_generation}"
            )

        with _trace.span("ocolos.replace", generation=bolted.bolt_generation) as sr:
            report = ReplacementReport(generation=bolted.bolt_generation)
            # Step 3: stop the world.
            with _trace.span("ocolos.pause", step=3) as s3:
                self.ptrace.pause()
            try:
                # Step 4: inject the BOLTed code at its linked addresses.
                with _trace.span("ocolos.inject", step=4) as s4:
                    injector = CodeInjector(self.process)
                    report.injection = injector.inject(bolted)
                    s4.set_attrs(bytes_copied=report.injection.bytes_copied)

                # Step 5: patch v-tables, stack-live call sites, fp map.
                with _trace.span("ocolos.patch", step=5) as s5:
                    self.patcher.patch_vtables(bolted, report.patches)

                    index = AddressIndex([self.original, bolted])
                    live = stack_live_functions(self.process, index)
                    report.patches.stack_live_functions = live
                    report.stack_live_count = len(live)
                    moved = set(self.patcher.moved_entries(bolted))
                    if self.osr and live & moved:
                        report.osr = self._transfer_frames(bolted, live & moved)
                        # Re-unwind against C_0 alone: a transferred frame
                        # no longer resolves into old code, so its function
                        # needs no call-site pinning — its C_0 copy can
                        # never execute again.
                        live = stack_live_functions(
                            self.process, AddressIndex([self.original])
                        )
                        report.patches.stack_live_functions = live
                    report.pinned_stack_live = len(live & moved)
                    if self.patch_all_calls:
                        targets: Set[str] = set(self.patcher.all_c0_functions())
                    else:
                        targets = live
                    self.patcher.patch_direct_calls(
                        bolted, sorted(targets), report.patches
                    )

                    self.fp_map.register_generation(bolted)
                    self.fp_map.install(self.process)

                    if self.trampolines:
                        from repro.core.trampoline import TrampolineInstaller

                        report.trampolines = TrampolineInstaller(
                            self.ptrace, self.original
                        ).install(bolted)
                    s5.set_attrs(
                        pointer_writes=report.pointer_writes,
                        stack_live=report.stack_live_count,
                    )

                report.pause_seconds = self.cost_model.replacement_seconds(
                    pointer_writes=report.pointer_writes,
                    bytes_copied=report.injection.bytes_copied,
                )
                self.process.replacement_generation = bolted.bolt_generation
                self.history.append(report)
            finally:
                # Step 6: let the target run again.
                with _trace.span("ocolos.resume", step=6) as s6:
                    self.ptrace.resume()
            # The sim clock froze while paused: pin the replacement span to
            # the modelled pause and lay the steps out inside it by their
            # measured host-time shares.
            sr.set_sim_duration(report.pause_seconds)
            sr.set_attrs(pause_seconds=report.pause_seconds)
            _trace.apportion(sr, (s3, s4, s5, s6), report.pause_seconds)
            return report

    def _transfer_frames(self, bolted: Binary, functions: Set[str]):
        """OSR rung of the ladder: map and move live frames of ``functions``.

        Returns the :class:`~repro.osr.transfer.OsrReport` — on an
        all-or-nothing rollback, the report of the undone attempt, with
        the pin fallback handled by the caller's re-unwind.
        """
        from repro.errors import OsrError
        from repro.osr.mapper import FrameMapper
        from repro.osr.points import collect_osr_points
        from repro.osr.transfer import transfer_live_frames

        read = self.process.address_space.read
        mapper = FrameMapper.build(
            read, [self.original], bolted, functions=sorted(functions)
        )
        points = collect_osr_points(read, self.original, mapper.functions)
        try:
            return transfer_live_frames(
                self.process,
                self.ptrace,
                mapper,
                jmpbuf_binary=self.original,
                points=points,
            )
        except OsrError as exc:
            return getattr(exc, "report", None)
