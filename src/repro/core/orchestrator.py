"""The end-to-end OCOLOS pipeline (paper Fig 4a).

``Ocolos.optimize_once`` drives all six steps against a live process:

1. **profile** — stage-1 TopDown check (DMon-style), then LBR collection
   through an attached perf session, with profiling overhead charged to the
   target (Fig 7 region 2);
2. **build the BOLTed binary** — perf2bolt aggregation and BOLT run happen
   *in the background* while the target keeps running; the pipeline charges
   the target the configured CPU-contention loss for the modelled duration
   of those jobs (Fig 7 region 3);
3-6. **pause, inject, patch pointers, resume** — the stop-the-world
   replacement (Fig 7 region 4), delegated to
   :class:`~repro.core.replacement.CodeReplacer` for the first optimization
   and to :class:`~repro.core.continuous.ContinuousReplacer` for every
   subsequent one (continuous optimization, §IV-C — an *extension* relative
   to the paper's evaluation, which real BOLT's single-``.text`` assumption
   blocked).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.binary.binaryfile import Binary
from repro.bolt.optimizer import BoltOptions, BoltResult, run_bolt
from repro.compiler.codegen import CompilerOptions
from repro.core.continuous import ContinuousReplacer, ContinuousReport
from repro.core.costs import CostModel, FixedCosts
from repro.core.funcptr_map import FunctionPointerMap
from repro.core.patcher import scan_direct_call_sites
from repro.core.replacement import CodeReplacer, ReplacementReport
from repro.errors import ReplacementError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.profiling.dmon import FrontendDiagnosis, diagnose_frontend
from repro.profiling.perf import PerfSession, profile_for_duration
from repro.profiling.perf2bolt import extract_profile
from repro.uarch.frontend import CLOCK_HZ
from repro.vm.process import Process


@dataclass
class OcolosConfig:
    """Pipeline knobs.

    Attributes:
        profile_seconds: LBR collection duration (paper default 60 s on real
            hardware; 0.3 simulated seconds ≈ the same sample volume here).
        perf_period: cycles between LBR samples per core.
        perf_overhead: throughput fraction lost while perf is attached.
        check_frontend_first: run the stage-1 TopDown check and skip
            optimization for non-front-end-bound targets.
        frontend_threshold: front-end latency %% above which to optimize.
        background_contention: throughput fraction lost while perf2bolt and
            BOLT compete for cycles (Fig 7 region 3).
        background_sim_cap_seconds: at most this much of the background phase
            is actually *executed* in the VM (the phase is rate-uniform, so
            simulating more of it only burns host time; the full modelled
            duration still appears in the cost report and timelines).
        patch_all_calls: patch calls in every ``C_0`` function (the paper's
            rejected variant; ablation only).
        osr: transfer live frames onto each new layout via on-stack
            replacement (:mod:`repro.osr`) instead of pinning stack-live
            ``C_0`` functions / carry-copying stack-live ``C_i`` code.
        bolt_options: knobs forwarded to BOLT.
    """

    profile_seconds: float = 0.3
    perf_period: int = 4500
    perf_overhead: float = 0.14
    check_frontend_first: bool = False
    frontend_threshold: float = 8.0
    background_contention: float = 0.22
    background_sim_cap_seconds: float = 0.8
    patch_all_calls: bool = False
    osr: bool = False
    bolt_options: Optional[BoltOptions] = None


@dataclass
class OcolosReport:
    """What one ``optimize_once`` invocation did."""

    generation: int = 0
    skipped: bool = False
    diagnosis: Optional[FrontendDiagnosis] = None
    samples: int = 0
    records: int = 0
    bolt: Optional[BoltResult] = None
    replacement: Optional[ReplacementReport] = None
    continuous: Optional[ContinuousReport] = None
    costs: Optional[FixedCosts] = None

    @property
    def pause_seconds(self) -> float:
        """Stop-the-world duration of this optimization."""
        if self.replacement is not None:
            return self.replacement.pause_seconds
        if self.continuous is not None:
            return self.continuous.pause_seconds
        return 0.0


class Ocolos:
    """Online code layout optimizer attached to one target process."""

    def __init__(
        self,
        process: Process,
        original: Binary,
        *,
        compiler_options: Optional[CompilerOptions] = None,
        config: Optional[OcolosConfig] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.process = process
        self.program = process.program
        self.original = original
        self.compiler_options = compiler_options or CompilerOptions(jump_tables=False)
        self.config = config or OcolosConfig()
        self.cost_model = cost_model or CostModel()
        # Offline pre-work (before any pause): locate every direct call site.
        self.call_sites = scan_direct_call_sites(original)
        self.fp_map = FunctionPointerMap(original)
        self.replacer = CodeReplacer(
            process,
            original,
            call_sites=self.call_sites,
            cost_model=self.cost_model,
            patch_all_calls=self.config.patch_all_calls,
            fp_map=self.fp_map,
            osr=self.config.osr,
        )
        self.continuous_replacer: Optional[ContinuousReplacer] = None
        self.current_binary = original
        self.reports: List[OcolosReport] = []
        # Give the tracer a sim-time source so spans land on the Fig 7 axis.
        tracer = _trace.current()
        if tracer is not None and tracer.sim_clock is None:
            tracer.bind_sim_clock(process.sim_seconds)

    # ------------------------------------------------------------------

    def optimize_once(self) -> OcolosReport:
        """Run one full profile→BOLT→replace cycle.

        Returns:
            the report; ``report.skipped`` is set when the stage-1 check
            found the target not front-end bound.
        """
        cfg = self.config
        report = OcolosReport(generation=self.process.replacement_generation + 1)

        with _trace.span("ocolos.optimize", generation=report.generation) as root:
            if cfg.check_frontend_first:
                with _trace.span(
                    "ocolos.diagnose", threshold=cfg.frontend_threshold
                ) as sd:
                    report.diagnosis = diagnose_frontend(
                        self.process, threshold=cfg.frontend_threshold
                    )
                    sd.set_attrs(
                        frontend_bound=report.diagnosis.frontend_bound,
                        frontend_latency=report.diagnosis.topdown.frontend_latency,
                    )
                if not report.diagnosis.should_optimize:
                    report.skipped = True
                    root.set_attrs(skipped=True)
                    self._record_metrics(report)
                    self.reports.append(report)
                    return report

            # Step 1 (Fig 7 region 2): LBR collection under perf overhead.
            with _trace.span(
                "ocolos.profile", step=1, seconds=cfg.profile_seconds
            ) as sp:
                session = profile_for_duration(
                    self.process,
                    cfg.profile_seconds,
                    period=cfg.perf_period,
                    overhead=cfg.perf_overhead,
                )
                report.samples = session.sample_count
                report.records = session.record_count
                sp.set_attrs(samples=report.samples, records=report.records)
                sp.set_sim_duration(cfg.profile_seconds)

            # Step 2 (Fig 7 region 3): perf2bolt + BOLT in the background.
            # The VM executes only a capped slice of this phase, so the span
            # is pinned to the cost model's full modelled duration.
            with _trace.span("ocolos.build", step=2) as sb:
                profile, stats = extract_profile(session.samples, self.current_binary)

                generation = self.process.replacement_generation + 1
                if generation == 1:
                    bolt_result = run_bolt(
                        self.program,
                        self.original,
                        profile,
                        options=cfg.bolt_options,
                        compiler_options=self.compiler_options,
                        generation=1,
                    )
                else:
                    options = cfg.bolt_options or BoltOptions()
                    options.allow_rebolt = True
                    bolt_result = run_bolt(
                        self.program,
                        self.current_binary,
                        profile,
                        options=options,
                        compiler_options=self.compiler_options,
                        generation=generation,
                        cold_reference=self.original,
                    )
                report.bolt = bolt_result

                costs = self.cost_model.fixed_costs(
                    records=stats.records,
                    hot_functions=len(bolt_result.hot_functions),
                    emitted_bytes=bolt_result.hot_text_bytes,
                    pointer_writes=0,  # patched below once known
                    bytes_copied=bolt_result.hot_text_bytes,
                )
                self._run_with_contention(costs.background_seconds)
                sb.set_attrs(
                    perf2bolt_seconds=costs.perf2bolt_seconds,
                    llvm_bolt_seconds=costs.llvm_bolt_seconds,
                    hot_functions=len(bolt_result.hot_functions),
                )
                sb.set_sim_duration(costs.background_seconds)

            # Steps 3-6 (Fig 7 region 4): pause/inject/patch/resume spans are
            # emitted by the replacer that performs them.
            if generation == 1:
                report.replacement = self.replacer.replace(bolt_result)
            else:
                if self.continuous_replacer is None:
                    self.continuous_replacer = ContinuousReplacer(
                        self.process,
                        self.original,
                        self.fp_map,
                        call_sites=self.call_sites,
                        cost_model=self.cost_model,
                        osr=self.config.osr,
                    )
                report.continuous = self.continuous_replacer.replace_next(
                    bolt_result, self.current_binary
                )

            report.costs = FixedCosts(
                perf2bolt_seconds=costs.perf2bolt_seconds,
                llvm_bolt_seconds=costs.llvm_bolt_seconds,
                replacement_seconds=report.pause_seconds,
            )
            root.set_attrs(
                pause_seconds=report.pause_seconds,
                samples=report.samples,
            )
        self._record_metrics(report)
        self.current_binary = bolt_result.binary
        self.reports.append(report)
        return report

    def _record_metrics(self, report: OcolosReport) -> None:
        """Publish one optimization's outcome to the metrics registry."""
        registry = _metrics.current()
        if registry is None:
            return
        registry.counter(
            "ocolos.optimizations_total", "optimize_once invocations"
        ).labels(skipped="yes" if report.skipped else "no").inc()
        if report.skipped:
            return
        registry.gauge(
            "ocolos.generation", "current code generation of the target"
        ).set(self.process.replacement_generation)
        registry.histogram(
            "ocolos.pause_seconds", "stop-the-world replacement pause"
        ).observe(report.pause_seconds)
        if report.costs is not None:
            registry.gauge("ocolos.perf2bolt_seconds").set(report.costs.perf2bolt_seconds)
            registry.gauge("ocolos.llvm_bolt_seconds").set(report.costs.llvm_bolt_seconds)
        registry.counter("ocolos.samples_total", "LBR snapshots consumed").inc(
            report.samples
        )
        registry.counter("ocolos.records_total", "LBR records consumed").inc(
            report.records
        )

    # ------------------------------------------------------------------

    def _run_with_contention(self, seconds: float) -> None:
        """Advance the target ``seconds`` of wall time at reduced speed.

        The target gets ``1 - background_contention`` of the window's cycles;
        the rest is charged as contention idle (the BOLT job owns those
        cores' memory bandwidth and some of the target's SMT capacity).
        """
        if seconds <= 0:
            return
        simulated = min(seconds, self.config.background_sim_cap_seconds)
        f = min(0.9, max(0.0, self.config.background_contention))
        usable = simulated * CLOCK_HZ * (1.0 - f)
        if usable > 0:
            self.process.run(max_cycles=usable)
        lost = simulated * CLOCK_HZ * f
        for fe in self.process.frontends:
            fe.idle_cycles(lost)
