"""Fixed-cost model for OCOLOS's pipeline phases (paper Table II).

OCOLOS's cost structure is "fixed costs only": perf2bolt aggregation time,
llvm-bolt optimization time, and the stop-the-world replacement pause.  Each
is modelled as work-proportional:

* perf2bolt ∝ LBR records processed;
* llvm-bolt ∝ hot functions optimized (the dominant term in the real tool:
  MySQL 8.2 s / 964 functions ≈ 8.5 ms per function, MongoDB 17.9 s / 2364 ≈
  7.6 ms — remarkably consistent) plus emitted bytes;
* replacement ∝ pointer writes (ptrace pokes for v-table slots and call-site
  rel32s) plus bytes bulk-copied by the in-process agent.

Because the synthetic workloads are scaled down ~16-64x in code size and
pointer counts, the model takes a ``workload_scale`` that restores
paper-comparable magnitudes; with ``scale=1`` it reports the honest cost of
the scaled workload.  Constants are calibrated so the four benchmark
workloads land near Table II (see EXPERIMENTS.md for measured-vs-paper).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds per LBR record in perf2bolt aggregation.  NOT workload-scaled:
#: sample volume is set by profiling duration and thread count, and indeed
#: Table II shows MySQL (28.2 s) and the 2x-bigger MongoDB (26.6 s) costing
#: the same for the same 60 s profile.
PERF2BOLT_PER_RECORD = 1.65e-3
#: Fixed perf2bolt startup cost (seconds).
PERF2BOLT_BASE = 0.4
#: Seconds per (paper-scale) hot function optimized by llvm-bolt.
BOLT_PER_HOT_FUNCTION = 1.7e-3
#: Seconds per (paper-scale) emitted hot-text byte.
BOLT_PER_BYTE = 1.0e-8
#: Fixed llvm-bolt startup cost (seconds).
BOLT_BASE = 0.05
#: Seconds per (paper-scale) pointer write during the pause.  Absorbs both
#: the code-size scale and the smaller stack-live call-site sets of the
#: synthetic workloads (paper MySQL patches ~31k sites; ours ~130).
REPLACE_PER_POINTER = 3.0e-4
#: Seconds per (paper-scale) byte copied by the in-process agent.
REPLACE_PER_BYTE = 5.0e-9
#: Fixed pause overhead (attach, register reads, unwinding), seconds.
REPLACE_BASE = 0.004


@dataclass(frozen=True)
class FixedCosts:
    """The three Table-II columns for one replacement."""

    perf2bolt_seconds: float
    llvm_bolt_seconds: float
    replacement_seconds: float

    @property
    def background_seconds(self) -> float:
        """Time spent in concurrent background work (regions 3 of Fig 7)."""
        return self.perf2bolt_seconds + self.llvm_bolt_seconds


class CostModel:
    """Maps work counts to wall-clock seconds.

    Args:
        workload_scale: factor restoring paper-scale magnitudes for scaled
            synthetic workloads (each workload documents its own factor).
    """

    def __init__(self, workload_scale: float = 1.0) -> None:
        self.workload_scale = workload_scale

    def perf2bolt_seconds(self, records: int) -> float:
        """Aggregation time for ``records`` LBR records (duration-driven,
        not code-size-driven — see :data:`PERF2BOLT_PER_RECORD`)."""
        return PERF2BOLT_BASE + records * PERF2BOLT_PER_RECORD

    def llvm_bolt_seconds(self, hot_functions: int, emitted_bytes: int) -> float:
        """Optimization time for a BOLT run."""
        return (
            BOLT_BASE
            + hot_functions * self.workload_scale * BOLT_PER_HOT_FUNCTION
            + emitted_bytes * self.workload_scale * BOLT_PER_BYTE
        )

    def replacement_seconds(self, pointer_writes: int, bytes_copied: int) -> float:
        """Stop-the-world pause duration."""
        return (
            REPLACE_BASE
            + pointer_writes * self.workload_scale * REPLACE_PER_POINTER
            + bytes_copied * self.workload_scale * REPLACE_PER_BYTE
        )

    def fixed_costs(
        self,
        *,
        records: int,
        hot_functions: int,
        emitted_bytes: int,
        pointer_writes: int,
        bytes_copied: int,
    ) -> FixedCosts:
        """All three phase costs at once."""
        return FixedCosts(
            perf2bolt_seconds=self.perf2bolt_seconds(records),
            llvm_bolt_seconds=self.llvm_bolt_seconds(hot_functions, emitted_bytes),
            replacement_seconds=self.replacement_seconds(pointer_writes, bytes_copied),
        )


def break_even_seconds(
    slowdown_factor: float, disruption_seconds: float, speedup_factor: float
) -> float:
    """Paper §VI-C3: run optimized code at least ``a*s/b`` seconds to recover
    ground lost during a disruption.

    Args:
        slowdown_factor: ``a`` — throughput lost during the disruption,
            as a fraction of baseline (e.g. 0.2 = ran at 80%).
        disruption_seconds: ``s`` — how long the disruption lasted.
        speedup_factor: ``b`` — throughput gained after replacement, as a
            fraction of baseline (e.g. 0.4 = 1.4x).

    Returns:
        seconds of optimized execution needed to break even.
    """
    if speedup_factor <= 0:
        return float("inf")
    return slowdown_factor * disruption_seconds / speedup_factor
