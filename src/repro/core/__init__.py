"""OCOLOS: online code layout optimization (the paper's contribution).

The runtime pieces map one-to-one onto paper §IV/§V:

* :mod:`repro.core.funcptr_map` — the ``wrapFuncPtrCreation`` runtime map
  enforcing the "function pointers always reference C_0" invariant;
* :mod:`repro.core.injector` — code injection of the BOLTed hot text into the
  paused target at its linked addresses (via the preload agent);
* :mod:`repro.core.patcher` — pointer patching: v-tables and the direct call
  sites of stack-live ``C_0`` functions (with the "patch every call site"
  variant the paper measured and rejected available for ablation);
* :mod:`repro.core.replacement` — the stop-the-world replacement sequence;
* :mod:`repro.core.continuous` — continuous optimization ``C_i → C_{i+1}``
  with code garbage collection and stack-live code copying;
* :mod:`repro.core.costs` — the fixed-cost model (perf2bolt / llvm-bolt /
  replacement pause), calibrated against Table II;
* :mod:`repro.core.orchestrator` — the end-to-end pipeline of Fig 4a;
* :mod:`repro.core.bam` — Batch Accelerator Mode for short-running processes.
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "FunctionPointerMap": ".funcptr_map",
    "CodeInjector": ".injector",
    "InjectionReport": ".injector",
    "scan_direct_call_sites": ".patcher",
    "CallSite": ".patcher",
    "PointerPatcher": ".patcher",
    "PatchReport": ".patcher",
    "CodeReplacer": ".replacement",
    "TrampolineInstaller": ".trampoline",
    "TrampolineReport": ".trampoline",
    "ReplacementReport": ".replacement",
    "ContinuousReplacer": ".continuous",
    "ContinuousReport": ".continuous",
    "CostModel": ".costs",
    "FixedCosts": ".costs",
    "Ocolos": ".orchestrator",
    "OcolosConfig": ".orchestrator",
    "OcolosReport": ".orchestrator",
    "BatchAcceleratorMode": ".bam",
    "BamConfig": ".bam",
    "BamReport": ".bam",
}

__getattr__, __dir__, __all__ = lazy_exports(__name__, _EXPORTS)
