"""Code injection (paper §IV-A, §V "Efficient Code Copying").

OCOLOS leaves ``C_0`` untouched (design principle #1: preserve all ``C_0``
instruction addresses) and adds the BOLTed hot code at a fresh address range.
Because BOLT linked that code at a dedicated generation region, the bytes are
copied **verbatim at their linked addresses** — no relocation at injection
time.  The bulk copy runs inside the target through the preload agent;
ptrace only transfers control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.binary.binaryfile import Binary
from repro.errors import ReplacementError
from repro.vm.preload import PreloadAgent
from repro.vm.process import Process


@dataclass
class InjectionReport:
    """What one injection copied."""

    sections: List[str] = field(default_factory=list)
    bytes_copied: int = 0
    regions_mapped: int = 0
    hugepage_regions: int = 0


class CodeInjector:
    """Copies a BOLT generation's new sections into a running process."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self.agent = PreloadAgent.of(process)

    def inject(self, bolted: Binary) -> InjectionReport:
        """Map and copy ``bolted``'s generation sections into the target.

        Injects the hot text, the exiled-cold text and any regenerated
        jump-table section of the *new generation only* — never
        ``bolt.org.text`` (that code already exists in the target) and never
        ``.data`` (the live process owns its globals; pointer updates are the
        patcher's job).

        Raises:
            ReplacementError: if ``bolted`` is not BOLT output.
        """
        if not bolted.bolted:
            raise ReplacementError(f"binary {bolted.name!r} is not BOLT output")
        generation = bolted.bolt_generation
        report = InjectionReport()
        wanted_prefixes = (
            f".text.bolt{generation}",
            f".rodata.bolt{generation}",
        )
        for section in bolted.sections.values():
            if not section.name.startswith(wanted_prefixes):
                continue
            self.agent.map_region(
                start=section.addr,
                size=len(section.data),
                name=f"ocolos:{section.name}",
                hugepage=section.hugepage,
            )
            self.agent.copy_into(section.addr, section.data)
            report.sections.append(section.name)
            report.bytes_copied += len(section.data)
            report.regions_mapped += 1
            report.hugepage_regions += int(section.hugepage)
        if not report.sections:
            raise ReplacementError(
                f"binary {bolted.name!r} has no generation-{generation} sections"
            )
        return report
