"""Pointer patching (paper §IV-B).

After injection, execution must be steered into ``C_1`` in the common case
(design principle #2) without breaking any pointer OCOLOS cannot see.  The
patcher rewrites exactly two pointer classes:

* **v-table slots** — u64 function pointers in data memory; safe to rewrite
  because the v-table's slot->function meaning is fixed;
* **direct-call rel32 immediates inside stack-live ``C_0`` functions** —
  in-place 4-byte rewrites that preserve instruction addresses.  Stack-live
  functions are the ones that keep executing after resume (their frames are
  on some stack), so their call sites are where redirection pays off.  The
  paper found patching *all* ``C_0`` functions' calls adds replacement time
  with no speedup (cold functions rarely run); ``patch_all_calls=True``
  reproduces that experiment.

Call sites are located **offline, before the pause** by disassembling the
original binary (:func:`scan_direct_call_sites`), which is what keeps the
stop-the-world window short.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.binary.binaryfile import Binary
from repro.errors import ReplacementError
from repro.isa.instructions import INSTRUCTION_SIZES, Opcode
from repro.isa.disassembler import disassemble_range
from repro.vm.ptrace import PtraceController

_I32 = struct.Struct("<i")


@dataclass(frozen=True)
class CallSite:
    """One direct call instruction found in the original binary."""

    addr: int
    callee: str


@dataclass
class PatchReport:
    """What one patching pass rewrote."""

    vtable_slots_patched: int = 0
    call_sites_patched: int = 0
    functions_patched: int = 0
    stack_live_functions: Set[str] = field(default_factory=set)


def scan_direct_call_sites(binary: Binary) -> Dict[str, List[CallSite]]:
    """Locate every direct call site per function, by disassembly.

    Done once, offline, against the original binary — identifying call sites
    in advance significantly shortens the stop-the-world period (paper §IV).
    """
    sites: Dict[str, List[CallSite]] = {}
    entry_names = {info.addr: name for name, info in binary.functions.items()}

    sections = list(binary.sections.values())

    def read(addr: int, length: int) -> bytes:
        for section in sections:
            if section.contains(addr):
                off = addr - section.addr
                return section.data[off : off + length]
        raise ReplacementError(f"address {addr:#x} outside binary {binary.name!r}")

    for name, info in binary.functions.items():
        found: List[CallSite] = []
        for block in info.blocks:
            for insn_addr, insn in disassemble_range(
                read, block.addr, block.addr + block.size
            ):
                if insn.op == Opcode.CALL:
                    callee = entry_names.get(insn.target)
                    if callee is not None:
                        found.append(CallSite(addr=insn_addr, callee=callee))
        if found:
            sites[name] = found
    return sites


class PointerPatcher:
    """Rewrites live pointers in a paused target process."""

    def __init__(
        self,
        ptrace: PtraceController,
        original: Binary,
        call_sites: Optional[Dict[str, List[CallSite]]] = None,
    ) -> None:
        self.ptrace = ptrace
        self.original = original
        self.call_sites = (
            call_sites if call_sites is not None else scan_direct_call_sites(original)
        )

    # ------------------------------------------------------------------

    def moved_entries(self, bolted: Binary) -> Dict[str, Tuple[int, int]]:
        """``name -> (old_entry, new_entry)`` for functions BOLT moved."""
        moved: Dict[str, Tuple[int, int]] = {}
        for name, info in bolted.functions.items():
            old = self.original.functions.get(name)
            if old is not None and info.addr != old.addr:
                moved[name] = (old.addr, info.addr)
        return moved

    def patch_vtables(self, bolted: Binary, report: PatchReport) -> None:
        """Point every v-table slot whose function moved at its new entry."""
        moved = self.moved_entries(bolted)
        process = self.ptrace.process
        for vtable in self.original.vtables:
            for slot, func_name in enumerate(vtable.slots):
                pair = moved.get(func_name)
                if pair is None:
                    continue
                slot_addr = vtable.slot_addr(slot)
                self.ptrace.write_u64(slot_addr, pair[1])
                report.vtable_slots_patched += 1

    def patch_direct_calls(
        self,
        bolted: Binary,
        functions: Iterable[str],
        report: PatchReport,
    ) -> None:
        """Retarget direct calls inside the given ``C_0`` functions.

        Only the rel32 immediate bytes change; instruction addresses are
        preserved (design principle #1).
        """
        moved = self.moved_entries(bolted)
        call_size = INSTRUCTION_SIZES[Opcode.CALL]
        for name in functions:
            sites = self.call_sites.get(name)
            if not sites:
                continue
            patched_any = False
            for site in sites:
                pair = moved.get(site.callee)
                if pair is None:
                    continue
                rel = pair[1] - (site.addr + call_size)
                self.ptrace.write_memory(site.addr + 1, _I32.pack(rel))
                report.call_sites_patched += 1
                patched_any = True
            if patched_any:
                report.functions_patched += 1

    def all_c0_functions(self) -> List[str]:
        """Every function with call sites (for the patch-everything ablation)."""
        return list(self.call_sites)
