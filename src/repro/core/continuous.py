"""Continuous optimization: replacing ``C_i`` with ``C_{i+1}`` (paper §IV-C).

Unlike the first replacement (which only *adds* code), continuous
optimization must *remove* the previous generation or code grows without
bound.  Removal is safe only when nothing can reach ``C_i`` anymore, so the
replacer proactively enforces unreachability:

* **function pointers** never reference ``C_i`` in the first place — the
  ``wrapFuncPtrCreation`` invariant (checked before proceeding);
* **v-table slots** and **``C_0`` direct-call sites** currently pointing into
  ``C_i`` are retargeted at ``C_{i+1}`` (or back at ``C_0`` for functions no
  longer hot);
* **return addresses and thread PCs** inside ``C_i`` are the hard case: the
  optimizations that produced ``b_{i+1}`` reshuffled instructions, so a
  mid-function address cannot be mapped to the optimized version.  The
  replacer instead copies each stack-live ``C_i`` function byte-for-byte into
  a carry region of the new generation (``b_{i,i+1}``), re-encoding
  PC-relative targets for the new location, and rewrites the live return
  addresses/PCs by their offset within the copied code.  The copy performs
  identically to ``b_i``; *subsequent* calls reach the optimized ``b_{i+1}``
  through the patched pointers.

After patching, a verification sweep asserts no live pointer remains in the
``C_i`` address band, then the band is unmapped (garbage-collected).

The paper could not evaluate this mode because real BOLT refuses to process
a BOLTed binary; our BOLT exposes ``allow_rebolt`` precisely so this
mechanism can be exercised (flagged as an extension in EXPERIMENTS.md).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.binary.binaryfile import (
    BOLT_GEN_STRIDE,
    Binary,
    BlockInfo,
    FunctionInfo,
    bolt_text_base,
)
from repro.bolt.optimizer import BoltResult
from repro.core.costs import CostModel
from repro.core.funcptr_map import FunctionPointerMap
from repro.core.injector import CodeInjector, InjectionReport
from repro.core.patcher import CallSite, PatchReport, PointerPatcher
from repro.errors import ReplacementError
from repro.isa.assembler import encode_instruction
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.isa.disassembler import disassemble_range
from repro.isa.instructions import Opcode
from repro.vm.process import Process
from repro.vm.ptrace import PtraceController
from repro.vm.unwind import stack_return_addresses

_I32 = struct.Struct("<i")


def generation_band(generation: int) -> Tuple[int, int]:
    """Address range owned by BOLT generation ``generation``."""
    base = bolt_text_base(generation)
    return base, base + BOLT_GEN_STRIDE


@dataclass
class ContinuousReport:
    """What one ``C_i -> C_{i+1}`` replacement did."""

    generation: int
    injection: InjectionReport = field(default_factory=InjectionReport)
    patches: PatchReport = field(default_factory=PatchReport)
    functions_copied: int = 0
    bytes_copied_forward: int = 0
    return_addresses_rewritten: int = 0
    pcs_rewritten: int = 0
    regions_collected: int = 0
    pause_seconds: float = 0.0
    osr: Optional[object] = None  # OsrReport when the osr ladder ran

    @property
    def pointer_writes(self) -> int:
        """Pointers rewritten during the pause."""
        writes = (
            self.patches.vtable_slots_patched
            + self.patches.call_sites_patched
            + self.return_addresses_rewritten
            + self.pcs_rewritten
        )
        if self.osr is not None:
            writes += self.osr.frames_transferred
        return writes


class ContinuousReplacer:
    """Drives repeated generation replacement with code GC."""

    def __init__(
        self,
        process: Process,
        original: Binary,
        fp_map: FunctionPointerMap,
        *,
        call_sites: Optional[Dict[str, List[CallSite]]] = None,
        cost_model: Optional[CostModel] = None,
        osr: bool = False,
    ) -> None:
        if process.wrap_hook is None:
            raise ReplacementError(
                "continuous optimization requires the wrapFuncPtrCreation "
                "hook (compile the target with instrument_fp=True and run a "
                "first replacement)"
            )
        self.process = process
        self.original = original
        self.fp_map = fp_map
        self.ptrace = PtraceController(process)
        self.patcher = PointerPatcher(self.ptrace, original, call_sites)
        self.cost_model = cost_model or CostModel()
        #: Transfer live frames out of the retiring band via repro.osr,
        #: carry-copying only what the mapper rejects.
        self.osr = osr
        #: Synthetic binaries describing carry copies, per generation.
        self.carry_binaries: Dict[int, Binary] = {}
        self.history: List[ContinuousReport] = []

    # ------------------------------------------------------------------

    def replace_next(self, bolt_result: BoltResult, current: Binary) -> ContinuousReport:
        """Replace generation ``current`` with ``bolt_result``'s generation.

        Args:
            bolt_result: BOLT output for generation ``i+1``.
            current: the generation-``i`` binary whose code is being retired.

        Raises:
            ReplacementError: on generation mismatch, a violated function-
                pointer invariant, or a failed unreachability verification.
        """
        bolted = bolt_result.binary
        old_gen = self.process.replacement_generation
        if current.bolt_generation != old_gen:
            raise ReplacementError(
                f"current binary is generation {current.bolt_generation}, "
                f"process is at {old_gen}"
            )
        if bolted.bolt_generation != old_gen + 1:
            raise ReplacementError(
                f"expected generation {old_gen + 1}, got {bolted.bolt_generation}"
            )

        with _trace.span(
            "continuous.replace", generation=bolted.bolt_generation, round=len(self.history) + 1
        ) as sr:
            report = ContinuousReport(generation=bolted.bolt_generation)
            # Step 3: stop the world.
            with _trace.span("ocolos.pause", step=3) as s3:
                self.ptrace.pause()
            try:
                self._check_fp_invariant(old_gen)

                # Step 4: inject C_{i+1}, OSR-transfer live frames out of
                # the retiring band, and carry-copy whatever remains.
                with _trace.span("ocolos.inject", step=4) as s4:
                    injector = CodeInjector(self.process)
                    report.injection = injector.inject(bolted)

                    band = generation_band(old_gen)
                    if self.osr:
                        report.osr = self._transfer_frames(current, bolted, band)
                    # Re-scans live pointers, so after a full OSR transfer
                    # nothing is left in the band and this no-ops.
                    addr_map = self._copy_stack_live_code(current, bolted, band, report)
                    s4.set_attrs(
                        bytes_copied=report.injection.bytes_copied,
                        bytes_copied_forward=report.bytes_copied_forward,
                        functions_copied=report.functions_copied,
                    )

                # Step 5: retarget every pointer out of the retiring band,
                # verify unreachability, then garbage-collect the band.
                with _trace.span("ocolos.patch", step=5) as s5:
                    self._rewrite_stack_pointers(band, addr_map, report)
                    self._rewrite_jmpbufs(band, report)
                    self._patch_vtable_slots(bolted, band, report)
                    self._repatch_c0_calls(bolted, band, report)
                    self._repatch_trampolines(bolted, band, report)

                    self.fp_map.register_generation(bolted)
                    self._verify_unreachable(band)
                    report.regions_collected = self._collect_band(band)
                    s5.set_attrs(
                        pointer_writes=report.pointer_writes,
                        regions_collected=report.regions_collected,
                    )

                report.pause_seconds = self.cost_model.replacement_seconds(
                    pointer_writes=report.pointer_writes,
                    bytes_copied=report.injection.bytes_copied + report.bytes_copied_forward,
                )
                self.process.replacement_generation = bolted.bolt_generation
                self.history.append(report)
            finally:
                # Step 6: let the target run again.
                with _trace.span("ocolos.resume", step=6) as s6:
                    self.ptrace.resume()
            sr.set_sim_duration(report.pause_seconds)
            sr.set_attrs(pause_seconds=report.pause_seconds)
            _trace.apportion(sr, (s3, s4, s5, s6), report.pause_seconds)
            self._record_metrics(report)
            return report

    # ------------------------------------------------------------------

    def _transfer_frames(self, current: Binary, bolted: Binary, band: Tuple[int, int]):
        """OSR rung of the ladder: move live frames out of the retiring band.

        Sources are the retiring generation plus the carry copies riding
        in its band (carry block labels are stable, so frames that were
        carry-copied in an earlier round transfer out the same way);
        ``C_0`` pointers stay foreign because only in-band source blocks
        are mapped.  Whatever the mapper rejects is left in the band for
        the carry-copy rung that follows.
        """
        from repro.errors import OsrError
        from repro.osr.mapper import FrameMapper
        from repro.osr.points import collect_osr_points
        from repro.osr.transfer import transfer_live_frames

        read = self.process.address_space.read
        sources = [current]
        carry = self.carry_binaries.get(current.bolt_generation)
        if carry is not None:
            sources.append(carry)
        mapper = FrameMapper.build(read, sources, bolted, source_range=band)
        points = collect_osr_points(read, current, mapper.functions)
        try:
            return transfer_live_frames(
                self.process,
                self.ptrace,
                mapper,
                jmpbuf_binary=self.original,
                points=points,
            )
        except OsrError as exc:
            return getattr(exc, "report", None)

    def _record_metrics(self, report: ContinuousReport) -> None:
        """Publish per-round convergence gauges.

        Watching ``functions_copied`` / ``bytes_copied_forward`` /
        ``pointer_writes`` trend toward a floor across rounds is how one
        observes continuous optimization converging on a stable layout.
        """
        registry = _metrics.current()
        if registry is None:
            return
        gen = str(report.generation)
        registry.counter("continuous.rounds_total", "generation replacements").inc()
        registry.gauge("continuous.generation", "latest installed generation").set(
            report.generation
        )
        for name, value in (
            ("continuous.functions_copied", report.functions_copied),
            ("continuous.bytes_copied_forward", report.bytes_copied_forward),
            ("continuous.pointer_writes", report.pointer_writes),
            ("continuous.regions_collected", report.regions_collected),
            (
                "continuous.osr_frames_transferred",
                report.osr.frames_transferred if report.osr is not None else 0,
            ),
        ):
            registry.gauge(name, "per-round convergence indicator").labels(
                generation=gen
            ).set(value)
        registry.histogram(
            "continuous.pause_seconds", "per-round stop-the-world pause"
        ).observe(report.pause_seconds)

    def _check_fp_invariant(self, old_gen: int) -> None:
        lo, hi = generation_band(old_gen)
        binary = self.original
        for slot in range(binary.fp_slot_count):
            value = self.process.address_space.read_u64(binary.fp_slot_addr(slot))
            if lo <= value < hi:
                raise ReplacementError(
                    f"fp slot {slot} references retiring generation code at "
                    f"{value:#x}; wrapFuncPtrCreation invariant violated"
                )

    def _live_code_addresses(self) -> List[Tuple[int, str, int, int]]:
        """``(address, kind, tid, slot)`` for every PC, return address and
        jmpbuf-saved continuation (setjmp/longjmp, paper §III-B)."""
        out: List[Tuple[int, str, int, int]] = []
        for thread in self.process.threads:
            out.append((thread.pc, "pc", thread.tid, -1))
            addr = thread.sp
            slot = 0
            for ret in stack_return_addresses(self.process, thread):
                out.append((ret, "retaddr", thread.tid, slot))
                slot += 1
                addr += 8
        binary = self.original
        if binary.jmpbuf_count:
            for thread in self.process.threads:
                for buf in range(binary.jmpbuf_count):
                    buf_addr = binary.jmpbuf_addr(buf, thread.tid)
                    saved_pc = self.process.address_space.read_u64(buf_addr)
                    if saved_pc:
                        out.append((saved_pc, "jmpbuf", thread.tid, buf))
        return out

    def _functions_in_band(self, binary: Binary, band: Tuple[int, int]):
        lo, hi = band
        for name, info in binary.functions.items():
            blocks = [b for b in info.blocks if lo <= b.addr < hi]
            if blocks:
                yield name, info, blocks

    def _copy_stack_live_code(
        self,
        current: Binary,
        bolted: Binary,
        band: Tuple[int, int],
        report: ContinuousReport,
    ) -> Dict[int, int]:
        """Copy stack-live ``C_i`` functions into the new generation's carry
        region; returns an old-address -> new-address map covering their code.
        """
        lo, hi = band
        live_addrs = [a for a, _k, _t, _s in self._live_code_addresses() if lo <= a < hi]
        if not live_addrs:
            return {}

        sources: List[Binary] = [current]
        prev_carry = self.carry_binaries.get(current.bolt_generation)
        if prev_carry is not None:
            sources.append(prev_carry)

        live_functions: Dict[str, Tuple[Binary, FunctionInfo, List[BlockInfo]]] = {}
        for source in sources:
            for name, info, blocks in self._functions_in_band(source, band):
                spans = [(b.addr, b.addr + b.size) for b in blocks]
                if any(s <= a < e for a in live_addrs for s, e in spans):
                    live_functions.setdefault(name, (source, info, blocks))

        if not live_functions:
            return {}

        carry_base = bolt_text_base(bolted.bolt_generation) + (3 * BOLT_GEN_STRIDE) // 4
        cursor = carry_base
        addr_map: Dict[int, int] = {}
        block_map: List[Tuple[int, int, int]] = []  # (old_start, old_end, new_start)
        carry = Binary(
            name=f"{bolted.name}.carry",
            bolted=True,
            bolt_generation=bolted.bolt_generation,
            program_name=bolted.program_name,
            entry=bolted.entry,
        )

        # First pass: assign new addresses block by block (sizes unchanged).
        copies: List[Tuple[str, Binary, List[BlockInfo], int]] = []
        for name in sorted(live_functions):
            source, info, blocks = live_functions[name]
            start = cursor
            for block in blocks:
                block_map.append((block.addr, block.addr + block.size, cursor))
                cursor += block.size
            copies.append((name, source, blocks, start))

        total_size = cursor - carry_base
        agent = CodeInjector(self.process).agent
        agent.map_region(carry_base, total_size, name=f"ocolos:carry{bolted.bolt_generation}")

        def remap(addr: int) -> Optional[int]:
            for old_start, old_end, new_start in block_map:
                if old_start <= addr < old_end:
                    return new_start + (addr - old_start)
            return None

        moved_entries: Dict[int, int] = {}
        for name, info in bolted.functions.items():
            cur = current.functions.get(name)
            if cur is not None and cur.addr != info.addr:
                moved_entries[cur.addr] = info.addr

        space = self.process.address_space
        for name, source, blocks, _start in copies:
            carry_info = FunctionInfo(name=name, addr=0, section=f"carry{bolted.bolt_generation}")
            for block in blocks:
                new_start = remap(block.addr)
                data = self._reencode_block(
                    space, block, new_start, remap, moved_entries
                )
                agent.copy_into(new_start, data)
                report.bytes_copied_forward += len(data)
                carry_info.blocks.append(
                    BlockInfo(
                        label=block.label,
                        addr=new_start,
                        size=block.size,
                        n_instr=block.n_instr,
                    )
                )
            carry_info.addr = carry_info.blocks[0].addr
            carry.functions[name] = carry_info
            report.functions_copied += 1

        self.carry_binaries[bolted.bolt_generation] = carry
        self._remap = remap  # kept for the pointer-rewrite pass
        for old_start, _old_end, new_start in block_map:
            addr_map[old_start] = new_start
        return addr_map

    def _reencode_block(
        self,
        space,
        block: BlockInfo,
        new_start: int,
        remap,
        moved_entries: Dict[int, int],
    ) -> bytes:
        """Re-encode one block's instructions for its carry location.

        Intra-band targets follow the copied code; direct calls to retiring
        generation entries are retargeted at the new generation; everything
        else (calls into ``C_0``, absolute immediates) is preserved.
        """
        out = bytearray(block.size)
        decoded = disassemble_range(space.read, block.addr, block.addr + block.size)
        for insn_addr, insn in decoded:
            offset = insn_addr - block.addr
            if isinstance(insn.target, int):
                target = insn.target
                mapped = remap(target)
                if mapped is not None:
                    insn.target = mapped
                elif insn.op == Opcode.CALL and target in moved_entries:
                    insn.target = moved_entries[target]
            encoded = encode_instruction(insn, new_start + offset)
            out[offset : offset + len(encoded)] = encoded
        return bytes(out)

    def _rewrite_stack_pointers(
        self,
        band: Tuple[int, int],
        addr_map: Dict[int, int],
        report: ContinuousReport,
    ) -> None:
        lo, hi = band
        remap = getattr(self, "_remap", None)
        for thread in self.process.threads:
            if lo <= thread.pc < hi:
                new_pc = remap(thread.pc) if remap else None
                if new_pc is None:
                    raise ReplacementError(
                        f"thread {thread.tid} PC {thread.pc:#x} in retiring "
                        "band has no carry copy"
                    )
                regs = self.ptrace.get_regs(thread.tid)
                regs.pc = new_pc
                self.ptrace.set_regs(thread.tid, regs)
                report.pcs_rewritten += 1
            addr = thread.sp
            while addr < thread.stack_base:
                ret = self.ptrace.read_u64(addr)
                if lo <= ret < hi:
                    new_ret = remap(ret) if remap else None
                    if new_ret is None:
                        raise ReplacementError(
                            f"return address {ret:#x} in retiring band has "
                            "no carry copy"
                        )
                    self.ptrace.write_u64(addr, new_ret)
                    report.return_addresses_rewritten += 1
                addr += 8

    def _rewrite_jmpbufs(
        self, band: Tuple[int, int], report: ContinuousReport
    ) -> None:
        """Retarget setjmp continuations saved inside the retiring band at
        the carry copies (saved SPs are data and stay valid)."""
        binary = self.original
        if not binary.jmpbuf_count:
            return
        lo, hi = band
        remap = getattr(self, "_remap", None)
        for thread in self.process.threads:
            for buf in range(binary.jmpbuf_count):
                buf_addr = binary.jmpbuf_addr(buf, thread.tid)
                saved_pc = self.process.address_space.read_u64(buf_addr)
                if not (lo <= saved_pc < hi):
                    continue
                new_pc = remap(saved_pc) if remap else None
                if new_pc is None:
                    raise ReplacementError(
                        f"jmpbuf {buf} (thread {thread.tid}) continuation "
                        f"{saved_pc:#x} in retiring band has no carry copy"
                    )
                self.ptrace.write_u64(buf_addr, new_pc)
                report.return_addresses_rewritten += 1

    def _patch_vtable_slots(
        self, bolted: Binary, band: Tuple[int, int], report: ContinuousReport
    ) -> None:
        """Retarget every v-table slot at the newest code for its function."""
        lo, hi = band
        for vtable in self.original.vtables:
            for slot, func_name in enumerate(vtable.slots):
                slot_addr = vtable.slot_addr(slot)
                value = self.process.address_space.read_u64(slot_addr)
                new_info = bolted.functions.get(func_name)
                c0_info = self.original.functions.get(func_name)
                target = None
                if new_info is not None and new_info.addr != c0_info.addr:
                    target = new_info.addr
                elif lo <= value < hi:
                    target = c0_info.addr  # no longer hot: fall back to C_0
                if target is not None and target != value:
                    self.ptrace.write_u64(slot_addr, target)
                    report.patches.vtable_slots_patched += 1

    def _repatch_c0_calls(
        self, bolted: Binary, band: Tuple[int, int], report: ContinuousReport
    ) -> None:
        """Fix every ``C_0`` direct-call site that points into the retiring
        band (mandatory — those would dangle after GC), and freshly steer the
        stack-live ``C_0`` functions' calls toward the new generation (the
        same patch-scope the first replacement uses)."""
        from repro.vm.unwind import AddressIndex, stack_live_functions

        lo, hi = band
        call_size = 5  # Opcode.CALL encoded size
        moved = self.patcher.moved_entries(bolted)
        live = stack_live_functions(self.process, AddressIndex([self.original]))
        report.patches.stack_live_functions = live

        for name, sites in self.patcher.call_sites.items():
            for site in sites:
                raw = self.ptrace.read_memory(site.addr + 1, 4)
                current_target = site.addr + call_size + _I32.unpack(raw)[0]
                desired = None
                dangling = lo <= current_target < hi
                if (name in live or dangling) and site.callee in moved:
                    desired = moved[site.callee][1]
                elif dangling:
                    desired = self.original.functions[site.callee].addr
                if desired is not None and desired != current_target:
                    rel = desired - (site.addr + call_size)
                    self.ptrace.write_memory(site.addr + 1, _I32.pack(rel))
                    report.patches.call_sites_patched += 1

    def _repatch_trampolines(
        self, bolted: Binary, band: Tuple[int, int], report: ContinuousReport
    ) -> None:
        """Fix entry trampolines (the §IV-B full-redirection variant).

        A ``C_0`` entry overwritten with a jump into the retiring band would
        dangle after GC.  Moved functions get their trampoline retargeted at
        the new generation; functions that fell cold get their pristine
        entry bytes restored from the original binary image."""
        lo, hi = band
        text = self.original.sections.get(".text")
        moved = {
            name: info.addr
            for name, info in bolted.functions.items()
            if name in self.original.functions
            and info.addr != self.original.functions[name].addr
        }
        for name, info in self.original.functions.items():
            entry = info.addr
            opbyte = self.ptrace.read_memory(entry, 1)[0]
            if opbyte != int(Opcode.JMP):
                continue
            raw = self.ptrace.read_memory(entry + 1, 4)
            target = entry + 5 + _I32.unpack(raw)[0]
            if not (lo <= target < hi):
                continue
            new_target = moved.get(name)
            if new_target is not None:
                rel = new_target - (entry + 5)
                self.ptrace.write_memory(entry + 1, _I32.pack(rel))
            elif text is not None and text.contains(entry):
                off = entry - text.addr
                self.ptrace.write_memory(entry, bytes(text.data[off : off + 5]))
            else:  # pragma: no cover - all C_0 entries live in .text
                raise ReplacementError(
                    f"cannot repair trampoline of {name!r} at {entry:#x}"
                )
            report.patches.call_sites_patched += 1

    def _verify_unreachable(self, band: Tuple[int, int]) -> None:
        lo, hi = band
        for addr, kind, tid, slot in self._live_code_addresses():
            if lo <= addr < hi:
                raise ReplacementError(
                    f"live {kind} {addr:#x} (thread {tid}, slot {slot}) still "
                    "references the retiring generation"
                )
        for vtable in self.original.vtables:
            for slot in range(len(vtable.slots)):
                value = self.process.address_space.read_u64(vtable.slot_addr(slot))
                if lo <= value < hi:
                    raise ReplacementError(
                        f"v-table {vtable.class_id} slot {slot} still points "
                        "into the retiring generation"
                    )

    def _collect_band(self, band: Tuple[int, int]) -> int:
        """Unmap every region in the retiring band.  Returns regions freed."""
        lo, hi = band
        space = self.process.address_space
        to_free = [r.start for r in space.regions() if lo <= r.start < hi]
        for start in to_free:
            space.unmap_region(start)
        self.process.interpreter.invalidate()
        return len(to_free)
