"""The ``wrapFuncPtrCreation`` runtime (paper §IV-C2).

Continuous optimization must be able to discard generation ``C_i`` wholesale,
which is only safe if no function pointer anywhere in registers or memory can
reference it.  OCOLOS enforces the invariant at *creation* time: the compiler
pass marks every creation site, and the runtime maps any ``C_i`` entry
address back to the corresponding ``C_0`` entry before the program ever sees
the pointer.  Once created, pointers propagate freely with zero cost —
intervention happens only on creation (fixed-costs-only, design principle #3).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.binary.binaryfile import Binary
from repro.errors import ReplacementError
from repro.vm.process import Process


class FunctionPointerMap:
    """Maps optimized-generation entry addresses back to ``C_0`` entries."""

    def __init__(self, original: Binary) -> None:
        self.original = original
        self._to_c0: Dict[int, int] = {}
        self.wraps_total = 0
        self.wraps_translated = 0

    def register_generation(self, bolted: Binary) -> int:
        """Record ``C_i -> C_0`` entry translations for one BOLT generation.

        Returns:
            number of translations added.
        """
        added = 0
        for name, info in bolted.functions.items():
            c0 = self.original.functions.get(name)
            if c0 is None or info.addr == c0.addr:
                continue
            if info.addr not in self._to_c0:
                self._to_c0[info.addr] = c0.addr
                added += 1
        return added

    def wrap(self, addr: int) -> int:
        """``wrapFuncPtrCreation``: translate a just-created function pointer.

        Identity for addresses that do not reference optimized code (e.g.
        library code or ``C_0`` itself).
        """
        self.wraps_total += 1
        translated = self._to_c0.get(addr)
        if translated is None:
            return addr
        self.wraps_translated += 1
        return translated

    def install(self, process: Process) -> None:
        """Register the wrap hook on the target process."""
        process.set_wrap_hook(self.wrap)

    def translate_to_c0(self, addr: int) -> Optional[int]:
        """Lookup without counting (used by verification sweeps)."""
        return self._to_c0.get(addr)

    def __len__(self) -> int:
        return len(self._to_c0)


def require_fp_invariant(process: Process) -> None:
    """Check that no function-pointer slot references replaceable code.

    Raises:
        ReplacementError: if a slot points above the ``C_0`` text (i.e. into
            a BOLT generation region), meaning the target binary was built
            without the instrumentation pass and continuous optimization is
            unsafe.
    """
    from repro.binary.binaryfile import BOLT_TEXT_BASE

    binary = process.binary
    for slot in range(binary.fp_slot_count):
        value = process.address_space.read_u64(binary.fp_slot_addr(slot))
        if value >= BOLT_TEXT_BASE and value < BOLT_TEXT_BASE * 16:
            raise ReplacementError(
                f"fp slot {slot} holds {value:#x}, inside a replaceable code "
                "generation; compile the target with instrument_fp=True"
            )
