"""Trampoline-based full redirection (paper §IV-B).

OCOLOS's default policy tolerates occasional ``C_0`` execution (design
principle #2 only asks for the *common case*).  The paper notes that
security and debugging use-cases instead need **every** invocation of a
``C_0`` function to reach its ``C_1`` counterpart, "e.g. via trampoline
instructions at the start of ``C_0`` functions".

This module implements that variant: during a pause it overwrites the entry
of each moved ``C_0`` function with a ``JMP`` to the new entry.  Unlike
rel32 call patching this *does* modify ``C_0`` instructions, so installation
is guarded:

* a function whose entry block is smaller than the 5-byte jump is skipped
  (the jump would clobber the next block);
* a function with any live PC or return address inside the bytes to be
  overwritten is skipped for this cycle (it would resume into garbage).

Skipped functions still get redirected the ordinary way (patched callers /
v-tables); the trampoline only closes the residual function-pointer and
cold-caller paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.binary.binaryfile import Binary
from repro.errors import ReplacementError
from repro.isa.assembler import encode_instruction
from repro.isa.instructions import INSTRUCTION_SIZES, Opcode, jmp
from repro.vm.ptrace import PtraceController
from repro.vm.unwind import live_code_pointers

_JMP_SIZE = INSTRUCTION_SIZES[Opcode.JMP]


@dataclass
class TrampolineReport:
    """Outcome of one trampoline installation pass."""

    installed: int = 0
    skipped_small_entry: int = 0
    skipped_live_entry: int = 0
    functions: Set[str] = field(default_factory=set)

    @property
    def considered(self) -> int:
        """Moved functions examined."""
        return self.installed + self.skipped_small_entry + self.skipped_live_entry


class TrampolineInstaller:
    """Installs entry trampolines from ``C_0`` into a new generation."""

    def __init__(self, ptrace: PtraceController, original: Binary) -> None:
        self.ptrace = ptrace
        self.original = original

    def install(self, bolted: Binary) -> TrampolineReport:
        """Overwrite moved functions' ``C_0`` entries with jumps to ``C_1``.

        The tracee must be stopped (this rewrites code the process could be
        executing).

        Raises:
            PtraceError: if the tracee is running.
        """
        process = self.ptrace.process
        report = TrampolineReport()
        live = [
            (addr, kind) for addr, kind in live_code_pointers(process)
        ]

        for name, new_info in bolted.functions.items():
            old_info = self.original.functions.get(name)
            if old_info is None or old_info.addr == new_info.addr:
                continue
            entry_block = old_info.blocks[0]
            if entry_block.size < _JMP_SIZE:
                report.skipped_small_entry += 1
                continue
            clobber_range = (old_info.addr, old_info.addr + _JMP_SIZE)
            if any(clobber_range[0] <= a < clobber_range[1] for a, _k in live):
                report.skipped_live_entry += 1
                continue
            encoded = encode_instruction(jmp(new_info.addr), old_info.addr, {})
            self.ptrace.write_memory(old_info.addr, encoded)
            report.installed += 1
            report.functions.add(name)
        return report
