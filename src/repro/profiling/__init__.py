"""Profiling: LBR sampling, a perf-like session, and perf2bolt aggregation.

Mirrors the paper's two-stage profiling methodology (§V): stage 1 is a cheap
TopDown bottleneck check (:mod:`repro.profiling.dmon`, after DMon); stage 2
records Last Branch Record samples through a perf-like attachable session
(:mod:`repro.profiling.perf`) and aggregates them into block/edge/call-graph
counts (:mod:`repro.profiling.perf2bolt`) for BOLT.
"""

from repro._lazy import lazy_exports

_EXPORTS = {
    "BoltProfile": ".profile",
    "BlockSpanIndex": ".profile",
    "PerfSession": ".perf",
    "extract_profile": ".perf2bolt",
    "Perf2BoltStats": ".perf2bolt",
    "FrontendDiagnosis": ".dmon",
    "diagnose_frontend": ".dmon",
    "MissReport": ".annotate",
    "record_l1i_misses": ".annotate",
}

__getattr__, __dir__, __all__ = lazy_exports(__name__, _EXPORTS)
