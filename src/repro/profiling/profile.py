"""Profile data structures.

A :class:`BoltProfile` is the output of perf2bolt: execution counts per basic
block, weights per control-flow edge, and a call graph — everything BOLT's
reordering passes consume.  Blocks are identified by their link-time labels
(``"function#bb_id"``), which is the simulator's analogue of "the profile maps
perfectly onto the running code" when collected online; the clang-PGO model
deliberately degrades this mapping (see :mod:`repro.bolt.pgo_mapping`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.binary.binaryfile import Binary


@dataclass
class BoltProfile:
    """Aggregated profile, keyed on link-time block labels.

    Attributes:
        block_counts: executions per block label.
        branch_edges: taken-transfer counts between block labels (intra- and
            inter-function).
        fallthrough_edges: fallthrough execution counts between consecutive
            block labels within a function.
        call_edges: call counts between functions (callers include virtual
            and indirect calls observed in the LBR stream).
        sample_count: number of LBR snapshots aggregated.
        record_count: number of individual LBR records processed.
    """

    block_counts: Dict[str, int] = field(default_factory=dict)
    branch_edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    fallthrough_edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    call_edges: Dict[Tuple[str, str], int] = field(default_factory=dict)
    sample_count: int = 0
    record_count: int = 0

    def is_empty(self) -> bool:
        """Whether no execution activity was recorded."""
        return not self.block_counts

    def hot_functions(self, min_count: int = 1) -> List[str]:
        """Functions with at least ``min_count`` block executions recorded."""
        totals: Dict[str, int] = {}
        for label, count in self.block_counts.items():
            func = label.rsplit("#", 1)[0]
            totals[func] = totals.get(func, 0) + count
        return [f for f, c in sorted(totals.items(), key=lambda kv: -kv[1]) if c >= min_count]

    def function_block_counts(self, function: str) -> Dict[int, int]:
        """Block execution counts of one function, keyed by bb_id."""
        prefix = function + "#"
        out: Dict[int, int] = {}
        for label, count in self.block_counts.items():
            if label.startswith(prefix):
                out[int(label[len(prefix):])] = count
        return out

    def function_edges(self, function: str) -> Dict[Tuple[int, int], int]:
        """Intra-function CFG edge weights (taken + fallthrough), by bb_id."""
        prefix = function + "#"
        out: Dict[Tuple[int, int], int] = {}
        for edges in (self.branch_edges, self.fallthrough_edges):
            for (src, dst), count in edges.items():
                if src.startswith(prefix) and dst.startswith(prefix):
                    key = (int(src[len(prefix):]), int(dst[len(prefix):]))
                    out[key] = out.get(key, 0) + count
        return out

    def merge(self, other: "BoltProfile") -> None:
        """Accumulate ``other`` into this profile."""
        for label, count in other.block_counts.items():
            self.block_counts[label] = self.block_counts.get(label, 0) + count
        for attr in ("branch_edges", "fallthrough_edges", "call_edges"):
            mine = getattr(self, attr)
            for key, count in getattr(other, attr).items():
                mine[key] = mine.get(key, 0) + count
        self.sample_count += other.sample_count
        self.record_count += other.record_count

    def scaled(self, factor: float) -> "BoltProfile":
        """A copy with all counts multiplied by ``factor`` (floored at 0)."""
        out = BoltProfile(sample_count=self.sample_count, record_count=self.record_count)
        out.block_counts = {k: int(v * factor) for k, v in self.block_counts.items()}
        out.branch_edges = {k: int(v * factor) for k, v in self.branch_edges.items()}
        out.fallthrough_edges = {
            k: int(v * factor) for k, v in self.fallthrough_edges.items()
        }
        out.call_edges = {k: int(v * factor) for k, v in self.call_edges.items()}
        return out


class BlockSpanIndex:
    """Maps code addresses to block labels for one binary.

    perf2bolt needs to symbolise raw LBR addresses; this index is built from
    the binary's block placements (the analogue of its symbol table).
    """

    def __init__(self, binary: Binary) -> None:
        spans: List[Tuple[int, int, str]] = []
        for func in binary.functions.values():
            for block in func.blocks:
                spans.append((block.addr, block.addr + block.size, block.label))
        spans.sort()
        self._starts = [s[0] for s in spans]
        self._spans = spans

    def label_at(self, addr: int) -> Optional[str]:
        """Block label covering ``addr``, or ``None``."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        start, end, label = self._spans[idx]
        if start <= addr < end:
            return label
        return None

    def labels_between(self, lo: int, hi: int) -> List[str]:
        """Labels of all blocks whose span intersects ``[lo, hi]``.

        Used to reconstruct fallthrough execution between two consecutive LBR
        records (the linear path from a branch target to the next branch).
        """
        if hi < lo:
            return []
        idx = bisect.bisect_right(self._starts, lo) - 1
        if idx < 0:
            idx = 0
        out: List[str] = []
        for start, end, label in self._spans[idx:]:
            if start > hi:
                break
            if end > lo:
                out.append(label)
        return out
