"""perf2bolt: aggregate raw LBR samples into a :class:`BoltProfile`.

Each LBR snapshot is a window of the last 32 taken transfers.  Aggregation
does what the real perf2bolt does:

* every record ``(from, to)`` increments the taken-edge count between the
  blocks containing those addresses;
* between two consecutive records, execution ran linearly from the earlier
  record's target to the later record's source — every block span in that
  range gets a fallthrough execution count;
* records whose source block belongs to a different function than the target
  block's entry increment the call graph (calls, virtual calls, indirect
  calls all appear in the LBR stream as taken transfers to function entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.binary.binaryfile import Binary
from repro.errors import ProfileError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.profiling.profile import BlockSpanIndex, BoltProfile


@dataclass(frozen=True)
class Perf2BoltStats:
    """Work performed by the aggregation (drives the cost model)."""

    samples: int
    records: int
    resolved_records: int


def extract_profile(
    samples: Iterable[Sequence[Tuple[int, int]]],
    binary: Binary,
) -> Tuple[BoltProfile, Perf2BoltStats]:
    """Aggregate LBR ``samples`` against ``binary``'s symbol information.

    Args:
        samples: LBR snapshots (each a sequence of ``(from, to)`` pairs,
            oldest first).
        binary: the binary the target process was running.

    Returns:
        ``(profile, stats)``.

    Raises:
        ProfileError: if no sample could be resolved against the binary.
    """
    with _trace.span("perf2bolt.extract", binary=binary.name) as sp:
        profile, stats = _aggregate(samples, binary)
        sp.set_attrs(
            samples=stats.samples,
            records=stats.records,
            resolved=stats.resolved_records,
        )
    registry = _metrics.current()
    if registry is not None:
        records = registry.counter(
            "perf2bolt.records_total", "LBR records aggregated, by resolution"
        )
        records.labels(resolved="yes").inc(stats.resolved_records)
        records.labels(resolved="no").inc(stats.records - stats.resolved_records)
        registry.counter("perf2bolt.runs_total", "aggregation invocations").inc()
    return profile, stats


def _aggregate(
    samples: Iterable[Sequence[Tuple[int, int]]],
    binary: Binary,
) -> Tuple[BoltProfile, Perf2BoltStats]:
    """The aggregation loop proper (see :func:`extract_profile`)."""
    index = BlockSpanIndex(binary)
    profile = BoltProfile()
    block_counts = profile.block_counts
    branch_edges = profile.branch_edges
    fallthrough_edges = profile.fallthrough_edges
    call_edges = profile.call_edges

    n_samples = 0
    n_records = 0
    n_resolved = 0
    entry_addrs = {f.addr: name for name, f in binary.functions.items()}

    for snapshot in samples:
        n_samples += 1
        prev_to = None
        for from_addr, to_addr in snapshot:
            n_records += 1
            src_label = index.label_at(from_addr)
            dst_label = index.label_at(to_addr)
            if src_label is None or dst_label is None:
                prev_to = None
                continue
            n_resolved += 1
            key = (src_label, dst_label)
            branch_edges[key] = branch_edges.get(key, 0) + 1
            block_counts[dst_label] = block_counts.get(dst_label, 0) + 1

            callee = entry_addrs.get(to_addr)
            if callee is not None:
                caller = src_label.rsplit("#", 1)[0]
                if caller != callee:
                    ckey = (caller, callee)
                    call_edges[ckey] = call_edges.get(ckey, 0) + 1

            if prev_to is not None and from_addr >= prev_to:
                path = index.labels_between(prev_to, from_addr)
                for a_label, b_label in zip(path, path[1:]):
                    fkey = (a_label, b_label)
                    fallthrough_edges[fkey] = fallthrough_edges.get(fkey, 0) + 1
                for label in path:
                    if label != dst_label:
                        block_counts[label] = block_counts.get(label, 0) + 1
            prev_to = to_addr

    profile.sample_count = n_samples
    profile.record_count = n_records
    stats = Perf2BoltStats(samples=n_samples, records=n_records, resolved_records=n_resolved)
    if n_samples and not n_resolved:
        raise ProfileError(
            f"no LBR record resolved against binary {binary.name!r}; "
            "was the profile collected on a different binary?"
        )
    return profile, stats
