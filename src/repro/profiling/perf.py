"""perf-like LBR sampling session.

A :class:`PerfSession` attaches to a running :class:`~repro.vm.process.Process`
(new or already running, as ``perf record -p`` allows), enables LBR recording,
and snapshots each thread's 32-entry LBR ring every ``period`` cycles.  While attached it charges a small throughput overhead —
the paper's Fig 7 region 2 shows MySQL dropping from ~4,200 to ~3,600 tps
(~14%) under profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProfileError
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.vm.process import Process
from repro.vm.thread import SimThread

LbrSnapshot = Tuple[Tuple[int, int], ...]


class PerfSession:
    """One ``perf record`` invocation with LBR sampling.

    Args:
        period: **cycles** between samples per core — perf's sampling clock
            is time-based, so sample volume depends on duration, not IPC
            (which is why Table II's perf2bolt cost is roughly uniform
            across workloads for the same 60 s profile).
        overhead: fraction of target cycles lost to sampling while attached.
    """

    def __init__(self, period: int = 4500, overhead: float = 0.14) -> None:
        self.period = period
        self.overhead = overhead
        self.samples: List[LbrSnapshot] = []
        self.attached_to: Optional[Process] = None
        self._last_sample_cycles: Dict[int, int] = {}
        self._last_cycles: Dict[int, float] = {}

    # ------------------------------------------------------------------

    def attach(self, process: Process) -> None:
        """Start recording the target's LBR stream."""
        if self.attached_to is not None:
            raise ProfileError("session already attached")
        if process.perf_session is not None:
            raise ProfileError("process already has an attached perf session")
        self.attached_to = process
        process.perf_session = self
        process.lbr_enabled = True
        for thread in process.threads:
            cycles = process.frontends[thread.tid].counters.cycles
            self._last_sample_cycles[thread.tid] = cycles
            self._last_cycles[thread.tid] = cycles

    def detach(self) -> None:
        """Stop recording."""
        process = self.attached_to
        if process is None:
            raise ProfileError("session is not attached")
        process.perf_session = None
        process.lbr_enabled = False
        self.attached_to = None
        # Session totals land in the registry once, at detach — nothing is
        # recorded on the per-quantum sampling path.
        registry = _metrics.current()
        if registry is not None:
            registry.counter("perf.sessions_total", "perf record invocations").inc()
            registry.counter("perf.samples_total", "LBR snapshots taken").inc(
                self.sample_count
            )
            registry.counter("perf.records_total", "LBR records captured").inc(
                self.record_count
            )

    # ------------------------------------------------------------------

    def on_quantum(self, process: Process, thread: SimThread) -> None:
        """Hook called by the process scheduler after each thread quantum."""
        fe = process.frontends[thread.tid]
        cycles = fe.counters.cycles
        last_cycles = self._last_cycles.get(thread.tid, cycles)
        if self.overhead > 0 and cycles > last_cycles:
            penalty = (cycles - last_cycles) * self.overhead
            fe.idle_cycles(penalty)
            cycles += penalty
        self._last_cycles[thread.tid] = cycles

        last_sample = self._last_sample_cycles.get(thread.tid, 0.0)
        if cycles - last_sample >= self.period:
            ring = process.lbr_snapshot(thread.tid)
            if ring:
                self.samples.append(tuple(ring))
            self._last_sample_cycles[thread.tid] = cycles

    # ------------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Number of LBR snapshots collected."""
        return len(self.samples)

    @property
    def record_count(self) -> int:
        """Total LBR records across snapshots."""
        return sum(len(s) for s in self.samples)


def profile_for_duration(
    process: Process,
    duration_seconds: float,
    *,
    period: int = 4500,
    overhead: float = 0.14,
) -> PerfSession:
    """Attach, run the target for ``duration_seconds`` of simulated wall
    time, detach, and return the session.

    This is the harness-level convenience used by the profiling-duration
    sweep (paper Fig 6).
    """
    from repro.uarch.frontend import CLOCK_HZ

    session = PerfSession(period=period, overhead=overhead)
    with _trace.span(
        "perf.record", seconds=duration_seconds, period=period
    ) as sp:
        session.attach(process)
        try:
            process.run(max_cycles=duration_seconds * CLOCK_HZ)
        finally:
            session.detach()
        sp.set_attrs(samples=session.sample_count, records=session.record_count)
    return session
