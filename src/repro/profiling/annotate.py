"""perf report / perf annotate analogue: attribute L1i misses to functions.

The paper's MySQL case study (§VI-C) uses exactly this analysis: under BOLT
with an average-case profile (and under clang PGO), the Bison-generated
``MYSQLparse`` has the most L1i misses of any function; under OCOLOS and the
BOLT oracle it disappears from the profile entirely.  Our workloads carry a
``parse`` function playing the same role.

Attribution hooks into the front-end model per miss (zero cost when
disabled), so a report reflects the actual cache behaviour of the measured
window rather than a model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.binary.binaryfile import Binary
from repro.vm.process import Process
from repro.vm.unwind import AddressIndex


@dataclass
class MissReport:
    """L1i misses attributed to functions over one measurement window."""

    total_misses: int
    by_function: Dict[str, int] = field(default_factory=dict)
    unattributed: int = 0

    def top_functions(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` functions with the most L1i misses, descending."""
        ranked = sorted(self.by_function.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def share(self, function: str) -> float:
        """Fraction of all misses attributed to ``function``."""
        if self.total_misses == 0:
            return 0.0
        return self.by_function.get(function, 0) / self.total_misses

    def rank(self, function: str) -> Optional[int]:
        """1-based rank of ``function`` by miss count, or ``None`` if it took
        no misses (the paper's "does not even appear on perf's radar")."""
        ranked = self.top_functions(len(self.by_function))
        for idx, (name, _count) in enumerate(ranked):
            if name == function:
                return idx + 1
        return None


def record_l1i_misses(
    process: Process,
    binaries: Iterable[Binary],
    *,
    transactions: int = 400,
) -> MissReport:
    """Run ``process`` for ``transactions`` while attributing every L1i miss.

    Args:
        process: the running target (any code generation).
        binaries: binaries whose functions attribution should resolve against
            (pass both ``C_0`` and the current generation for an OCOLOS'd
            process).
        transactions: measurement window length.

    Returns:
        the attribution report.
    """
    index = AddressIndex(binaries)
    counts: Dict[str, int] = {}
    unattributed = 0
    total = 0

    def hook(addr: int) -> None:
        nonlocal total, unattributed
        total += 1
        resolved = index.resolve(addr)
        if resolved is None:
            unattributed += 1
        else:
            name = resolved[1]
            counts[name] = counts.get(name, 0) + 1

    for fe in process.frontends:
        fe.l1i_miss_hook = hook
    try:
        process.run(max_transactions=transactions)
    finally:
        for fe in process.frontends:
            fe.l1i_miss_hook = None
    return MissReport(total_misses=total, by_function=counts, unattributed=unattributed)
