"""Stage-1 profiling: DMon/TopDown-style front-end bottleneck detection.

Before paying for LBR collection and BOLT, OCOLOS checks whether the target
suffers enough front-end stalls to merit optimization (paper §V,
"Profiling").  This module runs a short counter-only measurement window and
applies a TopDown threshold — the same decision Fig 9's classifier makes
offline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.topdown import TopDownMetrics
from repro.vm.process import Process

#: Default decision threshold: proceed when the front-end latency share
#: exceeds this percentage of pipeline slots.
FRONTEND_LATENCY_THRESHOLD = 8.0


@dataclass(frozen=True)
class FrontendDiagnosis:
    """Outcome of the stage-1 check."""

    topdown: TopDownMetrics
    frontend_bound: bool
    threshold: float

    @property
    def should_optimize(self) -> bool:
        """Whether stage-2 (LBR + BOLT) is worth running."""
        return self.frontend_bound


def diagnose_frontend(
    process: Process,
    *,
    window_instructions: int = 200_000,
    threshold: float = FRONTEND_LATENCY_THRESHOLD,
) -> FrontendDiagnosis:
    """Measure a counter window on the running target and classify it.

    Args:
        process: the running target.
        window_instructions: measurement window length.
        threshold: front-end latency percentage above which the workload is
            considered front-end bound.

    Returns:
        the diagnosis, including the raw TopDown metrics.
    """
    delta = process.run(max_instructions=window_instructions)
    metrics = process.topdown(delta)
    return FrontendDiagnosis(
        topdown=metrics,
        frontend_bound=metrics.frontend_latency >= threshold,
        threshold=threshold,
    )
