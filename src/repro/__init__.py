"""OCOLOS reproduction: Online COde Layout OptimizationS (MICRO 2022).

A from-scratch Python implementation of the OCOLOS system and every
substrate it depends on, built on a simulated machine-code/process/front-end
stack.  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.

Quickstart::

    from repro import run_ocolos_pipeline, measure
    from repro.workloads.mysql import mysql_like, mysql_inputs

    workload = mysql_like()
    spec = mysql_inputs(workload)["oltp_read_only"]
    process, ocolos, report = run_ocolos_pipeline(workload, spec)
    process.run(max_transactions=500)
    print(measure(process, warmup=0).tps)
"""

__version__ = "1.0.0"

_EXPORTS = {
    # core OCOLOS
    "Ocolos": "repro.core.orchestrator",
    "OcolosConfig": "repro.core.orchestrator",
    "OcolosReport": "repro.core.orchestrator",
    "CodeReplacer": "repro.core.replacement",
    "ContinuousReplacer": "repro.core.continuous",
    "FunctionPointerMap": "repro.core.funcptr_map",
    "BatchAcceleratorMode": "repro.core.bam",
    "BamConfig": "repro.core.bam",
    "CostModel": "repro.core.costs",
    # substrate entry points
    "Process": "repro.vm.process",
    "PreloadAgent": "repro.vm.preload",
    "PtraceController": "repro.vm.ptrace",
    "Binary": "repro.binary.binaryfile",
    "link_program": "repro.binary.linker",
    "Program": "repro.compiler.ir",
    "CompilerOptions": "repro.compiler.codegen",
    "run_bolt": "repro.bolt.optimizer",
    "BoltOptions": "repro.bolt.optimizer",
    "PerfSession": "repro.profiling.perf",
    "extract_profile": "repro.profiling.perf2bolt",
    "BoltProfile": "repro.profiling.profile",
    "InputSpec": "repro.workloads.inputs",
    # harness
    "launch": "repro.harness.runner",
    "measure": "repro.harness.runner",
    "link_original": "repro.harness.runner",
    "run_ocolos_pipeline": "repro.harness.runner",
}


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(_EXPORTS) + ["__version__"]


__all__ = sorted(_EXPORTS) + ["__version__"]
