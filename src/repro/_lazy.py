"""PEP 562 lazy re-export helper for package ``__init__`` modules.

Subpackages of :mod:`repro` re-export their public names lazily so that
importing one submodule never eagerly pulls in sibling modules — the package
graph has legitimate cross-package references (linker ↔ layout, loader ↔
process) that would otherwise form import cycles through the ``__init__``
modules.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Tuple


def lazy_exports(
    package: str, exports: Dict[str, str]
) -> Tuple[Callable[[str], object], Callable[[], List[str]], List[str]]:
    """Build ``(__getattr__, __dir__, __all__)`` for a package.

    Args:
        package: the package's ``__name__``.
        exports: map of public name -> defining submodule (relative, e.g.
            ``".binaryfile"``).

    Returns:
        the three module-level hooks to assign in the package ``__init__``.
    """

    def __getattr__(name: str) -> object:
        try:
            module_name = exports[name]
        except KeyError:
            raise AttributeError(f"module {package!r} has no attribute {name!r}") from None
        module = importlib.import_module(module_name, package)
        value = getattr(module, name)
        return value

    def __dir__() -> List[str]:
        return sorted(exports)

    return __getattr__, __dir__, sorted(exports)
