"""Declarative parameter spaces over :class:`BoltOptions`.

A *candidate* is a full assignment over the space's axes, canonicalized as
a name-sorted tuple of ``(field, value)`` pairs — hashable (it rides inside
frozen :class:`~repro.engine.cells.CellSpec`\\ s), fingerprintable (it keys
the artifact cache) and trivially JSON-serializable.  Axis names must be
``BoltOptions`` fields, so ``BoltOptions(**dict(candidate))`` is always
valid and a typo'd axis fails at space construction, not mid-search.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from repro.bolt.optimizer import BoltOptions
from repro.errors import ReproError

#: A full assignment over a space's axes, sorted by field name.
Candidate = Tuple[Tuple[str, Any], ...]

_BOLT_FIELDS = {f.name: f for f in dataclasses.fields(BoltOptions)}


@dataclass(frozen=True)
class ParamSpace:
    """A finite search space: ``(field, candidate values)`` per axis."""

    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]

    def __post_init__(self) -> None:
        seen = set()
        for name, values in self.axes:
            if name not in _BOLT_FIELDS:
                raise ReproError(
                    f"param space axis {name!r} is not a BoltOptions field"
                )
            if name in seen:
                raise ReproError(f"param space axis {name!r} appears twice")
            if not values:
                raise ReproError(f"param space axis {name!r} has no values")
            seen.add(name)
        object.__setattr__(
            self, "axes", tuple(sorted(self.axes, key=lambda ax: ax[0]))
        )

    @property
    def size(self) -> int:
        """Number of distinct candidates in the space."""
        n = 1
        for _name, values in self.axes:
            n *= len(values)
        return n

    def default(self) -> Candidate:
        """The candidate matching plain ``BoltOptions()`` on every axis."""
        base = BoltOptions()
        return tuple((name, getattr(base, name)) for name, _values in self.axes)

    def sample(self, rng: random.Random) -> Candidate:
        """One uniformly random candidate (deterministic given ``rng``)."""
        return tuple((name, rng.choice(values)) for name, values in self.axes)

    def neighbors(self, candidate: Candidate) -> List[Candidate]:
        """All single-axis mutations of ``candidate`` (beam refinement)."""
        assigned = dict(candidate)
        out: List[Candidate] = []
        for name, values in self.axes:
            for value in values:
                if value == assigned.get(name):
                    continue
                mutated = dict(assigned)
                mutated[name] = value
                out.append(tuple(sorted(mutated.items())))
        return out

    def grid(self) -> Iterator[Candidate]:
        """Every candidate, in deterministic axis-major order."""
        def rec(i: int, acc: Dict[str, Any]) -> Iterator[Candidate]:
            if i == len(self.axes):
                yield tuple(sorted(acc.items()))
                return
            name, values = self.axes[i]
            for value in values:
                acc[name] = value
                yield from rec(i + 1, acc)
            del acc[name]

        return rec(0, {})

    def to_jsonable(self) -> Dict[str, List[Any]]:
        return {name: list(values) for name, values in self.axes}


def default_space() -> ParamSpace:
    """The full autotuner space: every layout knob the papers call
    workload-sensitive, including the stitch splice cap, chain-formation
    order and function-order tie-break seeds."""
    return ParamSpace(
        axes=(
            ("function_order", ("c3", "ph")),
            ("huge_pages", (False, True)),
            ("layout", ("bolt", "stitch")),
            ("max_splice_bytes", (2048, 4096, 8192)),
            ("min_block_count", (1, 2)),
            ("order_seed", (0, 1, 2)),
            ("stitch_order", ("weight", "density", "size")),
        )
    )


def small_space() -> ParamSpace:
    """An 8-candidate space (CI smoke / tests): layout x huge pages x
    function order — the axes with the largest measured effects."""
    return ParamSpace(
        axes=(
            ("function_order", ("c3", "ph")),
            ("huge_pages", (False, True)),
            ("layout", ("bolt", "stitch")),
        )
    )
