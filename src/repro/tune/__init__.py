"""Layout autotuner: staged search from profile to measured IPC.

``repro.tune`` closes the loop the ROADMAP's autotuner item calls for: the
BOLT reproduction's free parameters (:class:`~repro.bolt.optimizer.BoltOptions`
plus the stitch knobs and function-order seeds) form a declarative
:class:`~repro.tune.space.ParamSpace`; :func:`~repro.tune.search.run_search`
drives a staged search — multi-seed random sampling, beam refinement around
the leaders, successive halving on measurement budget — where every
candidate evaluation is an engine cell memoized by the content-addressed
artifact store, so replays and overlapping stages are cache hits and the
whole search is deterministic down to the tie-breaks.  The per-workload
winner lands as a :class:`~repro.tune.policy.TunedPolicy` file that
``repro fleet run --policy tuned:<file>`` and scenario TOML consume.
"""

from repro.tune.policy import (
    TunedPolicy,
    apply_policy,
    load_policy,
    policy_from_result,
    policy_options,
    save_policy,
)
from repro.tune.search import (
    StageRecord,
    TuneConfig,
    TuneResult,
    TuneRow,
    persist_tune_stats,
    publish_tune_rows,
    run_search,
)
from repro.tune.space import Candidate, ParamSpace, default_space, small_space

__all__ = [
    "Candidate",
    "ParamSpace",
    "StageRecord",
    "TuneConfig",
    "TuneResult",
    "TuneRow",
    "TunedPolicy",
    "apply_policy",
    "default_space",
    "load_policy",
    "persist_tune_stats",
    "policy_from_result",
    "policy_options",
    "publish_tune_rows",
    "run_search",
    "save_policy",
    "small_space",
]
