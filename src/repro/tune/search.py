"""The staged search driver: random sweep → beam refinement → halving.

Every candidate evaluation is one ``tune`` engine cell
(:class:`~repro.engine.cells.CellSpec`), prefetched through the parallel
:class:`~repro.engine.scheduler.Scheduler` and memoized by the artifact
store — so overlapping stages, repeated candidates and whole-search replays
are cache hits, and ``--jobs N`` changes wall-clock only, never results.

Determinism: candidate generation uses a seeded ``random.Random``; every
ranking breaks IPC ties with a seeded hash of the candidate's fingerprint
(:func:`_tie_key`), so the search replays bit-identically from a warm
cache regardless of scheduler parallelism or dict iteration order.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.cells import CellSpec, TuneCellResult, prefetch, run_cell, workload_bundle
from repro.engine.fingerprint import fingerprint
from repro.engine.store import store
from repro.errors import ReproError
from repro.harness.reporting import publish_bench_rows
from repro.obs import log as _obs_log
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.tune.space import Candidate, ParamSpace

_log = _obs_log.get_logger("tune")

#: File (inside the disk artifact cache) recording the last search's
#: per-stage totals, for ``repro engine stats``.
TUNE_STATS_FILE = "tune_stats.json"


@dataclass(frozen=True)
class TuneConfig:
    """Search-driver knobs.

    Attributes:
        workload: workload registry name.
        input_name: measurement input ("" = the bundle's first eval input).
        seed: search seed — drives sampling and every tie-break.
        n_random: stage-1 random candidates (the default candidate always
            rides along, so stage 1 evaluates ``n_random + 1`` cells cold).
        beam_width: leaders refined by single-axis mutation in stage 2.
        budgets: measurement budgets (transactions) per halving rung; the
            first is the cheap screening budget, the last decides the
            winner.
        exhaustive: evaluate the whole grid in stage 1 and skip the beam
            (small spaces / CI smoke).
        jobs: scheduler fan-out for cache misses.
    """

    workload: str
    input_name: str = ""
    seed: int = 0
    n_random: int = 8
    beam_width: int = 3
    budgets: Tuple[int, ...] = (150, 300, 600)
    exhaustive: bool = False
    jobs: int = 1


@dataclass
class StageRecord:
    """What one search stage cost: cells asked for vs actually computed."""

    stage: str
    budget: int
    cells: int
    computed: int
    cache_hits: int
    seconds: float

    def to_jsonable(self) -> Dict[str, Any]:
        return dict(vars(self))


@dataclass
class TuneResult:
    """Everything one search produced."""

    workload: str
    input_name: str
    seed: int
    space: Dict[str, List[Any]]
    winner: Candidate
    winner_ipc: float
    winner_itlb_mpki: float
    default_ipc: float
    default_itlb_mpki: float
    stages: List[StageRecord] = field(default_factory=list)
    evaluations: List[Dict[str, Any]] = field(default_factory=list)
    candidates: int = 0

    @property
    def speedup(self) -> float:
        """Winner IPC over default-BOLT IPC on the final budget."""
        return self.winner_ipc / self.default_ipc if self.default_ipc else 1.0

    @property
    def cells(self) -> int:
        return sum(s.cells for s in self.stages)

    @property
    def computed(self) -> int:
        return sum(s.computed for s in self.stages)

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.stages)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cells if self.cells else 0.0

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "input": self.input_name,
            "seed": self.seed,
            "space": self.space,
            "winner": dict(self.winner),
            "winner_fingerprint": fingerprint(self.winner),
            "winner_ipc": self.winner_ipc,
            "winner_itlb_mpki": self.winner_itlb_mpki,
            "default_ipc": self.default_ipc,
            "default_itlb_mpki": self.default_itlb_mpki,
            "speedup": round(self.speedup, 4),
            "candidates": self.candidates,
            "cells": self.cells,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "stages": [s.to_jsonable() for s in self.stages],
            "evaluations": self.evaluations,
        }


@dataclass
class TuneRow:
    """``bench.tune.*`` row: string fields become labels, numbers gauges."""

    workload: str
    best_ipc: float
    default_ipc: float
    speedup: float
    best_itlb_mpki: float
    default_itlb_mpki: float
    cells: int
    computed: int
    cache_hit_rate: float


def _tie_key(seed: int, candidate: Candidate) -> str:
    """Deterministic, seed-dependent ranking tie-break for equal IPC."""
    return hashlib.sha256(f"{seed}:{fingerprint(candidate)}".encode()).hexdigest()


def _spec(config: TuneConfig, input_name: str, candidate: Candidate, budget: int) -> CellSpec:
    return CellSpec(
        kind="tune",
        workload=config.workload,
        input_name=input_name,
        transactions=budget,
        tune_params=candidate,
    )


def run_search(space: ParamSpace, config: TuneConfig) -> TuneResult:
    """Run the staged search; returns the replayable result record."""
    bundle = workload_bundle(config.workload)
    input_name = config.input_name or bundle.eval_inputs[0]
    if input_name not in bundle.inputs:
        raise ReproError(
            f"unknown input {input_name!r} for workload {config.workload!r}"
        )
    if not config.budgets:
        raise ReproError("TuneConfig.budgets must not be empty")

    rng = random.Random(config.seed)
    default = space.default()
    #: (candidate, budget) -> TuneCellResult
    scores: Dict[Tuple[Candidate, int], TuneCellResult] = {}
    stages: List[StageRecord] = []
    registry = _metrics.current()

    def evaluate(stage: str, candidates: List[Candidate], budget: int) -> None:
        """Fill ``scores`` for every (candidate, budget) not yet measured."""
        todo = [c for c in candidates if (c, budget) not in scores]
        specs = [_spec(config, input_name, c, budget) for c in todo]
        t0 = time.perf_counter()
        computed = prefetch(specs, jobs=config.jobs) if specs else 0
        for candidate, spec in zip(todo, specs):
            scores[(candidate, budget)] = run_cell(spec)
        seconds = time.perf_counter() - t0
        record = StageRecord(
            stage=stage,
            budget=budget,
            cells=len(specs),
            computed=computed,
            cache_hits=len(specs) - computed,
            seconds=round(seconds, 4),
        )
        stages.append(record)
        _log.info(
            "tune.stage", stage=stage, budget=budget, cells=record.cells,
            computed=record.computed, cache_hits=record.cache_hits,
            seconds=record.seconds,
        )
        if registry is not None:
            registry.counter("tune.cells_total", "tune cells requested").inc(record.cells)
            registry.counter("tune.cells_computed_total", "tune cells computed").inc(
                record.computed
            )
            registry.counter("tune.cache_hits_total", "tune cells served from cache").inc(
                record.cache_hits
            )

    def ranked(candidates: List[Candidate], budget: int) -> List[Candidate]:
        """Best-first by IPC at ``budget``; seeded-hash tie-break."""
        return sorted(
            candidates,
            key=lambda c: (-scores[(c, budget)].ipc, _tie_key(config.seed, c)),
        )

    with _trace.span(
        "tune.search", workload=config.workload, input=input_name, seed=config.seed
    ) as span:
        screen = config.budgets[0]

        # ---- stage 1: seeded random sweep (default always rides) ---------
        with _trace.span("tune.stage", stage="random", budget=screen):
            pool: List[Candidate] = [default]
            seen = {default}
            if config.exhaustive:
                for candidate in space.grid():
                    if candidate not in seen:
                        seen.add(candidate)
                        pool.append(candidate)
            else:
                attempts = 0
                while len(pool) < config.n_random + 1 and attempts < config.n_random * 20:
                    candidate = space.sample(rng)
                    attempts += 1
                    if candidate not in seen:
                        seen.add(candidate)
                        pool.append(candidate)
            evaluate("random", pool, screen)

        # ---- stage 2: beam refinement around the screening leaders -------
        if not config.exhaustive and config.beam_width > 0:
            with _trace.span("tune.stage", stage="beam", budget=screen):
                beam = ranked(pool, screen)[: config.beam_width]
                fresh: List[Candidate] = []
                for leader in beam:
                    for neighbor in space.neighbors(leader):
                        if neighbor not in seen:
                            seen.add(neighbor)
                            fresh.append(neighbor)
                            pool.append(neighbor)
                evaluate("beam", fresh, screen)

        # ---- stage 3: successive halving on measurement budget -----------
        survivors = ranked(pool, screen)
        for rung, budget in enumerate(config.budgets[1:], start=1):
            keep = max(2, -(-len(survivors) // 2))
            survivors = survivors[:keep]
            if default not in survivors:
                # The default is always promoted so the winner-vs-default
                # comparison exists at the final, most-trusted budget.
                survivors.append(default)
            with _trace.span(
                "tune.stage", stage=f"halving{rung}", budget=budget,
                survivors=len(survivors),
            ):
                evaluate(f"halving{rung}", survivors, budget)
            survivors = ranked(survivors, budget)

        final_budget = config.budgets[-1]
        winner = survivors[0]
        winner_score = scores[(winner, final_budget)]
        default_score = scores[(default, final_budget)]
        span.set_attrs(
            candidates=len(seen),
            winner_ipc=round(winner_score.ipc, 4),
            default_ipc=round(default_score.ipc, 4),
        )

    if registry is not None:
        registry.gauge("tune.winner_ipc", "winning candidate IPC").set(winner_score.ipc)
        registry.gauge("tune.default_ipc", "default BOLT IPC").set(default_score.ipc)
        registry.gauge("tune.speedup", "winner IPC / default IPC").set(
            winner_score.ipc / default_score.ipc if default_score.ipc else 1.0
        )

    evaluations = [
        {
            "params": dict(candidate),
            "budget": budget,
            "ipc": round(result.ipc, 6),
            "itlb_mpki": round(result.itlb_mpki, 6),
            "l1i_mpki": round(result.l1i_mpki, 6),
        }
        for (candidate, budget), result in sorted(
            scores.items(), key=lambda kv: (kv[0][1], _tie_key(config.seed, kv[0][0]))
        )
    ]
    result = TuneResult(
        workload=config.workload,
        input_name=input_name,
        seed=config.seed,
        space=space.to_jsonable(),
        winner=winner,
        winner_ipc=winner_score.ipc,
        winner_itlb_mpki=winner_score.itlb_mpki,
        default_ipc=default_score.ipc,
        default_itlb_mpki=default_score.itlb_mpki,
        stages=stages,
        evaluations=evaluations,
        candidates=len(seen),
    )
    persist_tune_stats(result)
    return result


def persist_tune_stats(result: TuneResult) -> Optional[str]:
    """Record per-stage totals in the disk cache for ``engine stats``.

    No-op (returns ``None``) without a bound disk cache.
    """
    disk = store().disk
    if disk is None:
        return None
    path = os.path.join(disk.root, TUNE_STATS_FILE)
    doc = {
        "workload": result.workload,
        "input": result.input_name,
        "seed": result.seed,
        "winner_ipc": round(result.winner_ipc, 6),
        "default_ipc": round(result.default_ipc, 6),
        "stages": [s.to_jsonable() for s in result.stages],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_tune_stats(cache_dir: str) -> Optional[Dict[str, Any]]:
    """Read the last search's stage totals from a disk cache (or None)."""
    path = os.path.join(cache_dir, TUNE_STATS_FILE)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def publish_tune_rows(results: List[TuneResult]) -> List[TuneRow]:
    """Export one ``bench.tune.*`` row per search result."""
    rows = [
        TuneRow(
            workload=r.workload,
            best_ipc=round(r.winner_ipc, 4),
            default_ipc=round(r.default_ipc, 4),
            speedup=round(r.speedup, 4),
            best_itlb_mpki=round(r.winner_itlb_mpki, 4),
            default_itlb_mpki=round(r.default_itlb_mpki, 4),
            cells=r.cells,
            computed=r.computed,
            cache_hit_rate=round(r.cache_hit_rate, 4),
        )
        for r in results
    ]
    publish_bench_rows("tune", rows)
    return rows
