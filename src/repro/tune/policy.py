"""TunedPolicy: the committed artifact a search produces and fleets consume.

A policy file is a small versioned JSON document::

    {
      "version": 1,
      "workload": "mysql",
      "input": "oltp_read_only",
      "seed": 0,
      "params": {"layout": "stitch", "huge_pages": true, ...},
      "ipc": 0.4028,
      "default_ipc": 0.4020
    }

``params`` holds only :class:`~repro.bolt.optimizer.BoltOptions` field
overrides, so :func:`policy_options` can always rebuild the exact winning
configuration; the IPC columns are provenance, not configuration.  Fleets
apply a policy with ``repro fleet run --policy tuned:<file>`` or a
scenario-TOML ``policy = "tuned:<file>"`` key (resolved relative to the
scenario file) — both route through :func:`apply_policy`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.bolt.optimizer import BoltOptions
from repro.errors import ReproError

POLICY_VERSION = 1

_BOLT_FIELDS = {f.name for f in dataclasses.fields(BoltOptions)}


@dataclass
class TunedPolicy:
    """A per-workload tuned layout: BoltOptions overrides plus provenance."""

    workload: str
    params: Dict[str, Any] = field(default_factory=dict)
    ipc: float = 0.0
    default_ipc: float = 0.0
    seed: int = 0
    input_name: str = ""
    version: int = POLICY_VERSION

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "workload": self.workload,
            "input": self.input_name,
            "seed": self.seed,
            "params": dict(self.params),
            "ipc": self.ipc,
            "default_ipc": self.default_ipc,
        }


def policy_from_result(result) -> TunedPolicy:
    """Build a policy from a :class:`~repro.tune.search.TuneResult`."""
    return TunedPolicy(
        workload=result.workload,
        params=dict(result.winner),
        ipc=round(result.winner_ipc, 6),
        default_ipc=round(result.default_ipc, 6),
        seed=result.seed,
        input_name=result.input_name,
    )


def save_policy(policy: TunedPolicy, path: str) -> None:
    """Write a policy file (stable key order, trailing newline)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(policy.to_jsonable(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_policy(path: str) -> TunedPolicy:
    """Load and validate a policy file.

    Raises:
        ReproError: missing/unreadable file, bad JSON, unsupported version
            or a ``params`` key that is not a BoltOptions field.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read tuned policy {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"tuned policy {path!r} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ReproError(f"tuned policy {path!r}: expected a JSON object")
    version = doc.get("version", POLICY_VERSION)
    if version != POLICY_VERSION:
        raise ReproError(
            f"tuned policy {path!r}: unsupported version {version!r} "
            f"(this build reads version {POLICY_VERSION})"
        )
    params = doc.get("params")
    if not isinstance(params, dict) or not params:
        raise ReproError(f"tuned policy {path!r}: 'params' (object) is required")
    unknown = sorted(set(params) - _BOLT_FIELDS)
    if unknown:
        raise ReproError(
            f"tuned policy {path!r}: unknown BoltOptions params {unknown}"
        )
    return TunedPolicy(
        workload=str(doc.get("workload", "")),
        params=dict(params),
        ipc=float(doc.get("ipc", 0.0)),
        default_ipc=float(doc.get("default_ipc", 0.0)),
        seed=int(doc.get("seed", 0)),
        input_name=str(doc.get("input", "")),
        version=int(version),
    )


def policy_options(policy: TunedPolicy) -> BoltOptions:
    """The exact winning BoltOptions the policy records."""
    return BoltOptions(**policy.params)


def apply_policy(config, policy: TunedPolicy):
    """A fleet config running the tuned layout.

    Sets ``bolt_options`` to the policy's full vector and mirrors the
    ``layout``/``huge_pages`` scalars so
    :meth:`~repro.fleet.controller.FleetConfig.effective_bolt_options`
    folds to the same options either way.
    """
    options = policy_options(policy)
    return dataclasses.replace(
        config,
        bolt_options=options,
        layout=options.layout,
        huge_pages=options.huge_pages,
    )
