"""Structured event logging on top of stdlib :mod:`logging`.

Instrumented code logs *events with fields*, not formatted prose::

    from repro.obs import log

    _log = log.get_logger("cli")
    _log.info("experiment.start", command="fig", number=5, transactions=500)

Events flow through the ordinary ``logging`` machinery under the
``repro.<name>`` hierarchy, so applications embedding this package can route
them however they like.  :func:`configure` installs a handler on the
``repro`` root for CLI use: human-readable ``key=value`` lines by default,
or one JSON object per line with ``json_output=True`` (the ``--log-json``
flag) — machine-readable, grep-able, and safely off stdout (experiment
tables own stdout; logs go to stderr).
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional

__all__ = ["StructuredLogger", "JsonFormatter", "KeyValueFormatter", "get_logger", "configure"]

ROOT_NAME = "repro"

#: Attribute used to smuggle event fields through a LogRecord.
_FIELDS_ATTR = "obs_fields"


class StructuredLogger:
    """Thin wrapper turning keyword arguments into event fields."""

    def __init__(self, logger: logging.Logger) -> None:
        self.logger = logger

    def _emit(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        if self.logger.isEnabledFor(level):
            self.logger.log(level, event, extra={_FIELDS_ATTR: fields})

    def debug(self, event: str, **fields: Any) -> None:
        """Log ``event`` at DEBUG with ``fields``."""
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        """Log ``event`` at INFO with ``fields``."""
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        """Log ``event`` at WARNING with ``fields``."""
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        """Log ``event`` at ERROR with ``fields``."""
        self._emit(logging.ERROR, event, fields)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        doc: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            doc.update(fields)
        if record.exc_info:
            doc["exception"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True, default=str)


class KeyValueFormatter(logging.Formatter):
    """Human-readable ``HH:MM:SS level logger event k=v ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        parts = [stamp, record.levelname.lower(), record.name, record.getMessage()]
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            parts.extend(f"{k}={_short(v)}" for k, v in fields.items())
        line = " ".join(parts)
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def _short(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def get_logger(name: str = "") -> StructuredLogger:
    """A structured logger under the ``repro`` hierarchy."""
    full = f"{ROOT_NAME}.{name}" if name else ROOT_NAME
    return StructuredLogger(logging.getLogger(full))


def configure(
    *,
    json_output: bool = False,
    level: int = logging.INFO,
    stream: Optional[Any] = None,
) -> logging.Handler:
    """Install a handler on the ``repro`` root logger (idempotent).

    Args:
        json_output: emit JSON lines instead of key=value text.
        level: minimum level for the ``repro`` hierarchy.
        stream: destination (defaults to ``sys.stderr``).

    Returns:
        the installed handler (so tests/CLI can remove or retarget it).
    """
    root = logging.getLogger(ROOT_NAME)
    root.setLevel(level)
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_output else KeyValueFormatter())
    handler._obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return handler
