"""Observability for the OCOLOS pipeline: traces, metrics, structured logs.

Three pillars, all off by default and zero-cost while off:

* :mod:`repro.obs.trace` — nested span tracing with sim-clock *and*
  wall-clock timestamps; exports JSONL and Chrome/Perfetto ``trace.json``.
  An orchestrator trace rendered on the sim axis is the paper's Fig 7
  timeline.
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  with labels, plus ``snapshot()`` / ``diff()`` for windowed measurement.
* :mod:`repro.obs.log` — structured event logging (JSON or key=value) on
  stdlib ``logging``.

Enable everything with::

    import repro.obs as obs

    tracer, registry = obs.enable()
    ...run a pipeline...
    tracer.export("trace.json")
    registry.export("metrics.json")
    obs.disable()

or use the CLI flags: ``python -m repro run-pipeline --trace-out trace.json
--metrics-out metrics.json --log-json``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro._lazy import lazy_exports
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

_EXPORTS = {
    # tracing
    "Tracer": ".trace",
    "Span": ".trace",
    "span": ".trace",
    # metrics
    "MetricsRegistry": ".metrics",
    "MetricsSnapshot": ".metrics",
    "Counter": ".metrics",
    "Gauge": ".metrics",
    "Histogram": ".metrics",
    "VMCounters": ".metrics",
    # logging
    "StructuredLogger": ".log",
    "get_logger": ".log",
    "configure": ".log",
}

__getattr__, __dir__, _all = lazy_exports(__name__, _EXPORTS)
__all__ = _all + ["enable", "disable", "enabled"]


def enable(
    *, trace: bool = True, metrics: bool = True
) -> Tuple[Optional["_trace.Tracer"], Optional["_metrics.MetricsRegistry"]]:
    """Turn observability on; returns ``(tracer, registry)`` (None if off).

    Processes created after this call pick up interpreter-level VM counters
    automatically; attach to an existing process with
    ``process.interpreter.set_observer(metrics.vm_counters())``.
    """
    tracer = _trace.install() if trace else None
    registry = _metrics.install() if metrics else None
    return tracer, registry


def disable() -> None:
    """Turn all observability off (spans/metrics recorded so far are lost)."""
    _trace.uninstall()
    _metrics.uninstall()


def enabled() -> bool:
    """Whether any observability pillar is currently installed."""
    return _trace.current() is not None or _metrics.current() is not None
