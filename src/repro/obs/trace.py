"""Span tracer: the journey of one OCOLOS pipeline, recorded.

A :class:`Tracer` records nested :class:`Span`\\ s with *two* clocks:

* **sim clock** — the simulated machine's wall time (core cycles over
  :data:`~repro.uarch.frontend.CLOCK_HZ`), bound per pipeline via
  :meth:`Tracer.bind_sim_clock`.  A trace plotted on this axis *is* the
  paper's Fig 7 timeline: the profile span is region 2, the background
  build span region 3, the replacement span region 4.
* **wall clock** — host ``time.perf_counter()``, for finding where the
  reproduction itself spends host time.

Spans are created through the module-level :func:`span` helper::

    from repro.obs import trace

    with trace.span("bolt.run", generation=1) as sp:
        ...
        sp.set_attrs(hot_functions=42)

When tracing is disabled (the default) :func:`span` returns a shared no-op
object and the instrumented code pays one dict construction plus one ``None``
check — nothing is recorded and no tracer state exists.

Finished spans export as JSONL (one span object per line) or as a Chrome
``chrome://tracing`` / Perfetto-compatible ``trace.json`` (complete ``"X"``
events on the sim-clock axis, wall durations carried in ``args``).

Phases whose simulated duration is *modelled* rather than executed (the
background BOLT build runs under a sim cap; the stop-the-world pause does not
advance the target's clock at all) set their span length explicitly with
:meth:`Span.set_sim_duration`; the recorded trace then reconciles with the
cost model's Table II numbers by construction.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "apportion",
    "current",
    "span",
    "event",
    "install",
    "sample",
    "uninstall",
]


class Span:
    """One timed operation, possibly nested inside another."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attrs",
        "sim_start",
        "sim_end",
        "wall_start",
        "wall_end",
        "_tracer",
        "_sim_duration_override",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self.sim_start = tracer.sim_now()
        self.sim_end: Optional[float] = None
        self.wall_start = time.perf_counter()
        self.wall_end: Optional[float] = None
        self._sim_duration_override: Optional[float] = None

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)

    # -- mutation -------------------------------------------------------

    def set_attrs(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)
        return self

    def set_sim_duration(self, seconds: float) -> "Span":
        """Pin the span's simulated duration to a modelled value.

        Used for phases the VM does not execute in full: the background
        build (executed only up to ``background_sim_cap_seconds``) and the
        stop-the-world pause (the target's clock is frozen while paused).
        """
        self._sim_duration_override = float(seconds)
        return self

    def set_sim_window(self, start: float, duration: float) -> "Span":
        """Re-anchor the span on the sim axis (used when a parent
        apportions its modelled duration across children)."""
        self.sim_start = float(start)
        self._sim_duration_override = float(duration)
        return self

    # -- derived --------------------------------------------------------

    @property
    def sim_duration(self) -> float:
        """Simulated seconds covered by this span."""
        if self._sim_duration_override is not None:
            return self._sim_duration_override
        end = self.sim_end if self.sim_end is not None else self._tracer.sim_now()
        return end - self.sim_start

    @property
    def wall_duration(self) -> float:
        """Host seconds spent inside this span."""
        end = self.wall_end if self.wall_end is not None else time.perf_counter()
        return end - self.wall_start

    def to_dict(self) -> Dict[str, Any]:
        """JSONL record for this span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "sim_start": self.sim_start,
            "sim_duration": self.sim_duration,
            "wall_start": self.wall_start,
            "wall_duration": self.wall_duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, sim={self.sim_start:.4f}"
            f"+{self.sim_duration:.4f}s, depth={self.depth})"
        )


class _NullSpan:
    """Shared do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attrs(self, **attrs: Any) -> "_NullSpan":
        return self

    def set_sim_duration(self, seconds: float) -> "_NullSpan":
        return self

    def set_sim_window(self, start: float, duration: float) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Records a tree of spans against a bindable sim clock."""

    def __init__(self, sim_clock: Optional[Callable[[], float]] = None) -> None:
        self.sim_clock = sim_clock
        self.finished: List[Span] = []
        self.samples: List[tuple] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- clock ----------------------------------------------------------

    def bind_sim_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Attach the simulated-time source (e.g. ``process.sim_seconds``)."""
        self.sim_clock = clock

    def sim_now(self) -> float:
        """Current simulated time, 0.0 while no clock is bound."""
        clock = self.sim_clock
        return clock() if clock is not None else 0.0

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span; close it via ``with`` or :meth:`Span.__exit__`."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            self,
            name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(sp)
        return sp

    def _finish(self, sp: Span) -> None:
        sp.sim_end = self.sim_now()
        sp.wall_end = time.perf_counter()
        # Close any abandoned children first (exception unwinding).
        while self._stack and self._stack[-1] is not sp:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.finished.append(sp)

    def event(self, name: str, **attrs: Any) -> Span:
        """Record an instantaneous (zero-duration) span."""
        with self.span(name, **attrs) as sp:
            sp.set_sim_duration(0.0)
        return sp

    def sample(self, name: str, value: float) -> None:
        """Record a counter sample at the current sim time.

        Samples form per-name counter tracks (Chrome ``"C"`` events) —
        e.g. ``fleet.p99_ms`` per tick, ``forensics.checkpoint_bytes``
        per checkpoint — plotted as stepped area charts in Perfetto.
        They are Chrome-export only and do not appear in JSONL output.
        """
        self.samples.append((name, self.sim_now(), float(value)))

    def clear(self) -> None:
        """Drop all recorded spans and samples (the open stack is preserved)."""
        self.finished.clear()
        self.samples.clear()

    # -- queries --------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        """Finished spans with ``name``, in completion order."""
        return [s for s in self.finished if s.name == name]

    def pipeline_steps(self) -> List[Span]:
        """The paper's six pipeline-step spans, ordered by start time.

        Step spans are identified by their ``step`` attribute (1-6), set by
        the orchestrator and the replacers.
        """
        steps = [s for s in self.finished if "step" in s.attrs]
        steps.sort(key=lambda s: (s.wall_start, s.attrs["step"]))
        return steps

    # -- export ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """All finished spans as JSON Lines (start-time order)."""
        ordered = sorted(self.finished, key=lambda s: (s.wall_start, s.span_id))
        return "\n".join(json.dumps(s.to_dict(), sort_keys=True) for s in ordered)

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome ``trace.json`` document on the sim-clock axis.

        Complete (``"X"``) events; timestamps in microseconds as the format
        requires.  Wall-clock durations ride along in ``args.wall_ms``.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "ocolos-sim"},
            }
        ]
        for sp in sorted(self.finished, key=lambda s: (s.sim_start, s.span_id)):
            args = dict(sp.attrs)
            args["wall_ms"] = round(sp.wall_duration * 1e3, 3)
            events.append(
                {
                    "name": sp.name,
                    "cat": sp.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": sp.sim_start * 1e6,
                    "dur": sp.sim_duration * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        for name, sim_ts, value in self.samples:
            events.append(
                {
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "ph": "C",
                    "ts": sim_ts * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": {"value": value},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path: str) -> None:
        """Write the trace to ``path``.

        ``*.jsonl`` gets JSON Lines; anything else (conventionally
        ``trace.json``) gets the Chrome trace document.
        """
        if path.endswith(".jsonl"):
            text = self.to_jsonl() + "\n"
        else:
            text = json.dumps(self.to_chrome(), sort_keys=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)


# ---------------------------------------------------------------------------
# module-level tracer (the instrumentation surface)
# ---------------------------------------------------------------------------

_TRACER: Optional[Tracer] = None


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer, enabling tracing."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def uninstall() -> None:
    """Disable tracing; :func:`span` reverts to the no-op span."""
    global _TRACER
    _TRACER = None


def current() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def span(name: str, **attrs: Any):
    """Open a span on the installed tracer (no-op while disabled)."""
    t = _TRACER
    if t is None:
        return NULL_SPAN
    return t.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an instantaneous event on the installed tracer, if any."""
    t = _TRACER
    if t is not None:
        t.event(name, **attrs)


def sample(name: str, value: float) -> None:
    """Record a counter sample on the installed tracer, if any."""
    t = _TRACER
    if t is not None:
        t.sample(name, value)


def apportion(parent, children, total_seconds: float) -> None:
    """Split a parent's modelled sim duration across finished children.

    Used for the stop-the-world window: the target's sim clock is frozen
    while paused, so the pause/inject/patch/resume child spans have zero
    measured sim extent.  This lays them out sequentially inside the parent,
    each sized by its share of the *host* time actually spent — a modelled
    duration decomposed by measured proportions.
    """
    if parent is NULL_SPAN or not children:
        return
    walls = [max(c.wall_duration, 0.0) for c in children]
    total_wall = sum(walls)
    if total_wall <= 0.0:
        walls = [1.0] * len(children)
        total_wall = float(len(children))
    cursor = parent.sim_start
    for child, wall in zip(children, walls):
        duration = total_seconds * (wall / total_wall)
        child.set_sim_window(cursor, duration)
        cursor += duration
