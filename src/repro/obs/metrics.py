"""Metrics registry: counters, gauges and fixed-bucket histograms.

The API follows the Prometheus client shape scaled down to this repo's
needs::

    from repro.obs import metrics

    reg = metrics.current()
    if reg is not None:
        reg.counter("perf.samples_total").inc(session.sample_count)
        reg.gauge("ocolos.generation").set(3)
        reg.histogram("bolt.pass_seconds").observe(0.012)

Every instrument supports labels via ``labels(**kv)``, which returns a bound
child sharing the parent's storage::

    reg.counter("perf2bolt.records_total").labels(resolved="yes").inc(n)

:meth:`MetricsRegistry.snapshot` returns an immutable
:class:`MetricsSnapshot`; ``new.diff(old)`` subtracts counter and histogram
series (gauges keep their newest value), which is how a measurement window
is carved out of monotonically growing totals.

The registry is process-global and off by default — instrumented code holds
no reference and asks :func:`current` each time, paying a single ``None``
check when observability is disabled.

:class:`VMCounters` is the special case for the interpreter's hot path: a
plain-attribute bag the instrumented step function increments directly
(dict-keyed instruments would be too slow at one update per executed run),
published into the registry on demand via :meth:`VMCounters.publish`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "VMCounters",
    "current",
    "install",
    "uninstall",
    "vm_counters",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared storage + label plumbing for one named metric."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: Dict[LabelKey, Any] = {}
        self._bound: LabelKey = ()

    def labels(self, **labels: Any) -> "_Instrument":
        """A view of this metric bound to a label set."""
        child = self.__class__.__new__(self.__class__)
        child.__dict__.update(self.__dict__)
        child._bound = _label_key(labels)
        return child

    def _value_factory(self) -> Any:
        raise NotImplementedError

    def _cell(self) -> Any:
        cell = self._series.get(self._bound)
        if cell is None:
            cell = self._series[self._bound] = self._value_factory()
        return cell

    def series(self) -> Dict[LabelKey, Any]:
        """Raw per-label-set values (for snapshots/tests)."""
        return dict(self._series)


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def _value_factory(self) -> List[float]:
        return [0.0]

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._cell()[0] += amount

    @property
    def value(self) -> float:
        """Current value of the bound (or unlabeled) series."""
        cell = self._series.get(self._bound)
        return cell[0] if cell is not None else 0.0


class Gauge(_Instrument):
    """Point-in-time value that can go up and down."""

    kind = "gauge"

    def _value_factory(self) -> List[float]:
        return [0.0]

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self._cell()[0] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self._cell()[0] += amount

    @property
    def value(self) -> float:
        """Current value of the bound (or unlabeled) series."""
        cell = self._series.get(self._bound)
        return cell[0] if cell is not None else 0.0


class _HistogramCell:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 = overflow (+Inf) bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram (cumulative-le semantics on export)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)

    def _value_factory(self) -> _HistogramCell:
        return _HistogramCell(len(self.buckets))

    def observe(self, value: float) -> None:
        """Record one observation."""
        cell = self._cell()
        cell.sum += value
        cell.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cell.counts[i] += 1
                return
        cell.counts[-1] += 1

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts of the bound series."""
        cell = self._series.get(self._bound)
        return list(cell.counts) if cell is not None else [0] * (len(self.buckets) + 1)

    @property
    def count(self) -> int:
        """Observations recorded on the bound series."""
        cell = self._series.get(self._bound)
        return cell.count if cell is not None else 0

    @property
    def sum(self) -> float:
        """Sum of observations on the bound series."""
        cell = self._series.get(self._bound)
        return cell.sum if cell is not None else 0.0


class MetricsSnapshot:
    """Frozen registry contents: ``{metric: {label_key: value}}``.

    Counter/gauge values are floats; histogram values are dicts with
    ``buckets`` (upper bound -> count), ``sum`` and ``count``.
    """

    def __init__(self, data: Dict[str, Dict[str, Any]]) -> None:
        self.data = data

    def __getitem__(self, name: str) -> Dict[str, Any]:
        return self.data[name]["series"]

    def __contains__(self, name: str) -> bool:
        return name in self.data

    def names(self) -> List[str]:
        """All metric names in the snapshot."""
        return sorted(self.data)

    def value(self, name: str, **labels: Any) -> Any:
        """One series value (0.0 / empty when never recorded)."""
        meta = self.data.get(name)
        if meta is None:
            return 0.0
        return meta["series"].get(_label_text(_label_key(labels)), 0.0)

    def diff(self, older: "MetricsSnapshot") -> "MetricsSnapshot":
        """This snapshot minus ``older``.

        Counters and histograms subtract series-wise; gauges keep this
        snapshot's value (a gauge is a level, not a flow).
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name, meta in self.data.items():
            old_meta = older.data.get(name, {"series": {}})
            old_series = old_meta["series"]
            series: Dict[str, Any] = {}
            for key, value in meta["series"].items():
                if meta["kind"] == "gauge":
                    series[key] = value
                elif meta["kind"] == "histogram":
                    old = old_series.get(key)
                    series[key] = _diff_histogram(value, old)
                else:
                    series[key] = value - old_series.get(key, 0.0)
            out[name] = {"kind": meta["kind"], "help": meta["help"], "series": series}
        return MetricsSnapshot(out)

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict form (what ``--metrics-out`` writes)."""
        return self.data

    def to_json(self) -> str:
        """Pretty JSON document of the snapshot."""
        return json.dumps(self.data, indent=2, sort_keys=True)


def _label_text(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


def _diff_histogram(new: Dict[str, Any], old: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    if old is None:
        return dict(new)
    return {
        "buckets": {
            le: n - old["buckets"].get(le, 0) for le, n in new["buckets"].items()
        },
        "sum": new["sum"] - old["sum"],
        "count": new["count"] - old["count"],
    }


class MetricsRegistry:
    """Names and owns every instrument."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Instrument] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        inst = self._metrics.get(name)
        if inst is None:
            inst = self._metrics[name] = cls(name, help, **kwargs)
        elif not isinstance(inst, cls):
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"requested {cls.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._get(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    def names(self) -> List[str]:
        """All registered metric names."""
        return sorted(self._metrics)

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every series into a :class:`MetricsSnapshot`."""
        data: Dict[str, Dict[str, Any]] = {}
        for name, inst in self._metrics.items():
            series: Dict[str, Any] = {}
            for key, cell in inst.series().items():
                text = _label_text(key)
                if isinstance(inst, Histogram):
                    hist: _HistogramCell = cell
                    buckets = {
                        ("+Inf" if i == len(inst.buckets) else repr(inst.buckets[i])): n
                        for i, n in enumerate(hist.counts)
                    }
                    series[text] = {
                        "buckets": buckets,
                        "sum": hist.sum,
                        "count": hist.count,
                    }
                else:
                    series[text] = cell[0]
            data[name] = {"kind": inst.kind, "help": inst.help, "series": series}
        return MetricsSnapshot(data)

    def export(self, path: str) -> None:
        """Write the current snapshot to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.snapshot().to_json() + "\n")


class VMCounters:
    """Hot-path event counters the interpreter increments directly.

    These mirror (a subset of) the per-core
    :class:`~repro.uarch.perfcounters.PerfCounters` bookkeeping, counted at
    the interpreter layer: ``instructions`` and ``branches`` accumulate the
    exact same increments the front-end model receives, so the two sources
    must agree to the unit when observation covers the process's whole life.
    """

    __slots__ = (
        "instructions",
        "branches",
        "runs",
        "superblocks",
        "guards",
        "guard_exits",
    )

    def __init__(self) -> None:
        self.instructions = 0
        self.branches = 0
        self.runs = 0
        self.superblocks = 0
        #: Deopt-guard evaluations inside chains (trace speculation), and
        #: how many of them took the cold outcome and exited the chain.
        self.guards = 0
        self.guard_exits = 0

    def publish(self, registry: MetricsRegistry, prefix: str = "vm.interp") -> None:
        """Copy the totals into ``registry`` as gauges."""
        registry.gauge(
            f"{prefix}.instructions", "instructions executed (interpreter count)"
        ).set(self.instructions)
        registry.gauge(
            f"{prefix}.branches", "control transfers executed (interpreter count)"
        ).set(self.branches)
        registry.gauge(f"{prefix}.runs", "decoded runs executed").set(self.runs)
        registry.gauge(
            f"{prefix}.superblocks", "superblock dispatches (chained fast path)"
        ).set(self.superblocks)
        registry.gauge(
            f"{prefix}.guards", "deopt-guard evaluations inside chains"
        ).set(self.guards)
        registry.gauge(
            f"{prefix}.guard_exits", "deopt-guard cold exits (chain deopts)"
        ).set(self.guard_exits)


# ---------------------------------------------------------------------------
# module-level registry (the instrumentation surface)
# ---------------------------------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def install(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process-wide registry, enabling metrics.

    Interpreters constructed *after* this call each allocate their own
    :class:`VMCounters` bag (see :func:`vm_counters`); attach one to a live
    process with ``process.interpreter.set_observer(metrics.vm_counters())``.
    """
    global _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    return _REGISTRY


def uninstall() -> None:
    """Disable metrics collection."""
    global _REGISTRY
    _REGISTRY = None


def current() -> Optional[MetricsRegistry]:
    """The installed registry, or None when metrics are disabled."""
    return _REGISTRY


def vm_counters() -> Optional[VMCounters]:
    """A fresh interpreter counter bag, or None while metrics are disabled.

    One bag per interpreter (not shared): a simulated host runs many
    processes, and each process's counts must stay comparable to its own
    :class:`~repro.uarch.perfcounters.PerfCounters` totals.
    """
    return VMCounters() if _REGISTRY is not None else None
