"""Tests for the interpreter and process: execution semantics, decode-cache
invalidation, stacks, LBR, counters, input switching."""

import pytest

from repro.errors import ExecutionError, PtraceError
from repro.isa.assembler import patch_rel32
from repro.vm.thread import ThreadState


class TestExecutionSemantics:
    def test_transactions_complete(self, tiny):
        proc = tiny.process()
        delta = proc.run(max_transactions=50)
        assert delta.transactions >= 50
        assert delta.instructions > 0

    def test_determinism_same_seed(self, tiny):
        d1 = tiny.process(seed=5).run(max_transactions=100)
        d2 = tiny.process(seed=5).run(max_transactions=100)
        assert d1.instructions == d2.instructions
        assert d1.cycles == pytest.approx(d2.cycles)
        assert d1.taken_branches == d2.taken_branches

    def test_different_seeds_diverge(self, tiny):
        d1 = tiny.process(seed=5).run(max_transactions=200)
        d2 = tiny.process(seed=6).run(max_transactions=200)
        assert d1.instructions != d2.instructions

    def test_branch_bias_controls_paths(self, tiny):
        """With p(taken)=1 every helper executes the taken-side block."""
        always = tiny.process(branch_p=1.0, seed=1)
        never = tiny.process(branch_p=0.0, seed=1)
        da = always.run(max_transactions=200)
        dn = never.run(max_transactions=200)
        # taken side has 3 body instructions + store, fallthrough has 5 alus:
        # instruction counts must differ systematically
        assert da.instructions != dn.instructions

    def test_vcall_dispatch_reads_vtable(self, tiny):
        proc = tiny.process(vcall_mix=[(1, 1.0)])  # always class 1
        proc.run(max_transactions=20)
        # class-1 method calls helper1 but never helper0's path via vcall;
        # helper2 is called directly from main, so check helper1's site ran:
        # we detect via instruction totals differing from a class-0-only run
        proc0 = tiny.process(vcall_mix=[(0, 1.0)], seed=7)
        proc0.run(max_transactions=20)
        assert proc.counters_total().instructions > 0
        assert proc0.counters_total().instructions > 0

    def test_icall_through_fp_slot(self, tiny):
        proc = tiny.process(icall_mix=[(0, 1.0)])
        delta = proc.run(max_transactions=30)
        assert delta.transactions >= 30  # leaf via slot 0 works

    def test_icall_null_slot_faults(self, tiny_fresh):
        proc = tiny_fresh.process(icall_mix=[(3, 1.0)])
        # zero the slot the icall will read
        proc.address_space.write_u64(tiny_fresh.binary.fp_slot_addr(3), 0)
        with pytest.raises(ExecutionError):
            proc.run(max_transactions=10)

    def test_mkfp_writes_slot(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=5)
        value = proc.address_space.read_u64(tiny.binary.fp_slot_addr(0))
        assert value == tiny.binary.functions["leaf"].addr

    def test_wrap_hook_intercepts_creation(self, tiny):
        proc = tiny.process()
        seen = []

        def hook(addr):
            seen.append(addr)
            return addr

        proc.set_wrap_hook(hook)
        proc.run(max_transactions=10)
        assert seen
        assert all(a == tiny.binary.functions["leaf"].addr for a in seen)

    def test_fp_creations_counted(self, tiny):
        proc = tiny.process()
        delta = proc.run(max_transactions=25)
        assert delta.fp_creations >= 25  # one mkfp per transaction

    def test_syscall_advances_idle(self, tiny):
        proc = tiny.process()
        delta = proc.run(max_transactions=50)
        assert delta.cyc_idle > 0

    def test_stack_balance(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=100)
        for thread in proc.threads:
            # main never returns: at most a few frames deep at any stop
            assert 0 <= thread.stack_depth < 64

    def test_return_addresses_on_stack_are_code(self, tiny):
        proc = tiny.process(n_threads=1)
        # stop mid-flight many times and validate any retaddrs
        text = tiny.binary.sections[".text"]
        for _ in range(20):
            proc.run(max_instructions=137)
            thread = proc.threads[0]
            addr = thread.sp
            while addr < thread.stack_base:
                ret = proc.address_space.read_u64(addr)
                assert text.contains(ret)
                addr += 8


class TestDecodeCache:
    def test_cache_populates(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=10)
        assert proc.interpreter.cached_runs() > 0

    def test_code_write_invalidates(self, tiny_fresh):
        proc = tiny_fresh.process()
        proc.run(max_transactions=10)
        assert proc.interpreter.cached_runs() > 0
        text = tiny_fresh.binary.sections[".text"]
        proc.address_space.write(text.addr, proc.address_space.read(text.addr, 1))
        assert proc.interpreter.cached_runs() == 0

    def test_patched_call_changes_execution(self, tiny_fresh):
        """Retargeting a direct call in memory redirects execution."""
        bundle = tiny_fresh
        proc = bundle.process(n_threads=1)
        proc.run(max_transactions=5)
        # find the call to helper2 inside main and patch it to helper3
        from repro.core.patcher import scan_direct_call_sites

        sites = scan_direct_call_sites(bundle.binary)
        main_sites = [s for s in sites["main"] if s.callee == "helper2"]
        assert main_sites
        site = main_sites[0]
        region = proc.address_space.region_at(site.addr)
        code = region.data
        patch_rel32(
            code,
            site.addr - region.start,
            site.addr,
            bundle.binary.functions["helper3"].addr,
        )
        proc.interpreter.invalidate()
        # helper3's branch site differs; force divergent behaviour by biasing
        proc.run(max_transactions=50)  # must not crash, still transacts
        assert proc.counters_total().transactions >= 55


class TestProcessControl:
    def test_paused_process_refuses_to_run(self, tiny):
        proc = tiny.process()
        proc.paused = True
        with pytest.raises(PtraceError):
            proc.run(max_transactions=1)

    def test_run_needs_budget(self, tiny):
        proc = tiny.process()
        with pytest.raises(ValueError):
            proc.run()

    def test_max_cycles_budget(self, tiny):
        proc = tiny.process()
        delta = proc.run(max_cycles=5000)
        per_core = delta.cycles / len(proc.threads)
        assert per_core >= 5000
        assert per_core < 50000  # didn't run away

    def test_set_input_switches_behaviour(self, tiny):
        proc = tiny.process(branch_p=0.95)
        proc.run(max_transactions=100)
        taken_before = proc.counters_total().taken_branches
        proc.set_input(tiny.input_spec(name="flipped", branch_p=0.05))
        proc.run(max_transactions=100)
        assert proc.counters_total().taken_branches > taken_before

    def test_wall_seconds_and_tps(self, tiny):
        proc = tiny.process()
        delta = proc.run(max_transactions=200)
        seconds = proc.wall_seconds(delta)
        assert seconds > 0
        assert proc.throughput_tps(delta) == pytest.approx(
            delta.transactions / seconds
        )

    def test_rss_includes_stacks_and_sections(self, tiny):
        proc = tiny.process(n_threads=2)
        rss = proc.max_rss_bytes()
        section_bytes = sum(len(s.data) for s in tiny.binary.sections.values())
        assert rss >= section_bytes


class TestLbr:
    def test_disabled_by_default(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=20)
        assert all(not ring for ring in proc.lbr_rings)

    def test_ring_capped_at_depth(self, tiny):
        proc = tiny.process()
        proc.lbr_enabled = True
        proc.run(max_transactions=50)
        for ring in proc.lbr_rings:
            assert len(ring) <= proc.lbr_depth

    def test_records_are_taken_transfers(self, tiny):
        proc = tiny.process(n_threads=1)
        proc.lbr_enabled = True
        proc.run(max_transactions=10)
        snapshot = proc.lbr_snapshot(0)
        assert snapshot
        text = tiny.binary.sections[".text"]
        for from_addr, to_addr in snapshot:
            assert text.contains(from_addr)
            assert text.contains(to_addr)

    def test_snapshot_is_a_copy(self, tiny):
        proc = tiny.process()
        proc.lbr_enabled = True
        proc.run(max_transactions=10)
        snap = proc.lbr_snapshot(0)
        proc.run(max_transactions=10)
        assert snap == snap  # unchanged by later execution
