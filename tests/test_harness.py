"""Tests for the harness runner, reporting, and small-scale experiment
mechanics (the full-size drivers run in benchmarks/)."""

import pytest

from repro.harness.reporting import format_series, format_table
from repro.harness.runner import (
    Measurement,
    bolt_oracle_binary,
    collect_profile,
    launch,
    link_original,
    measure,
    pgo_oracle_binary,
    run_ocolos_pipeline,
)
from repro.core.orchestrator import OcolosConfig


QUICK = OcolosConfig(profile_seconds=0.02, perf_period=400, background_sim_cap_seconds=0.05)


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(
            ["name", "value"], [["a", 1.2345], ["longer", 10_000.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.234" in text or "1.235" in text
        assert "10,000" in text

    def test_format_series(self):
        text = format_series("x", ["y"], [[1, 2.0], [2, 4.0]])
        assert "x" in text and "y" in text


class TestRunner:
    def test_link_original_cached(self, small_server):
        a = link_original(small_server)
        b = link_original(small_server)
        assert a is b

    def test_launch_and_measure(self, small_server, small_inputs):
        proc = launch(small_server, small_inputs["readish"], seed=2)
        m = measure(proc, transactions=150, warmup=100)
        assert isinstance(m, Measurement)
        assert m.tps > 0
        assert m.counters.transactions >= 150
        assert m.input_name == "readish"

    def test_collect_profile_nonempty(self, small_server, small_inputs):
        profile, stats = collect_profile(
            small_server, small_inputs["readish"], seconds=0.03, period=400
        )
        assert not profile.is_empty()
        assert stats.samples > 0

    def test_bolt_oracle_binary(self, small_server, small_inputs):
        result = bolt_oracle_binary(
            small_server, small_inputs["readish"], seconds=0.03
        )
        assert result.binary.bolted
        proc = launch(
            small_server,
            small_inputs["readish"],
            binary=result.binary,
            seed=2,
            with_agent=False,
        )
        m = measure(proc, transactions=100, warmup=50)
        assert m.tps > 0

    def test_pgo_oracle_binary(self, small_server, small_inputs):
        binary = pgo_oracle_binary(small_server, small_inputs["readish"], seconds=0.03)
        assert not binary.bolted
        proc = launch(
            small_server,
            small_inputs["readish"],
            binary=binary,
            seed=2,
            with_agent=False,
        )
        m = measure(proc, transactions=100, warmup=50)
        assert m.tps > 0

    def test_full_ocolos_pipeline(self, small_server, small_inputs):
        process, ocolos, report = run_ocolos_pipeline(
            small_server, small_inputs["readish"], config=QUICK
        )
        assert report.generation == 1
        assert process.replacement_generation == 1
        m = measure(process, transactions=100, warmup=100)
        assert m.tps > 0


class TestEndToEndShape:
    """The small server should already show the qualitative paper shapes."""

    def test_ocolos_improves_frontend_metrics(self, small_server, small_inputs):
        spec = small_inputs["readish"]
        p0 = launch(small_server, spec, seed=4, with_agent=False)
        base = measure(p0, transactions=300, warmup=200)
        process, _oc, _rep = run_ocolos_pipeline(
            small_server, spec, seed=4, config=QUICK
        )
        process.run(max_transactions=400)
        opt = measure(process, transactions=300, warmup=0)
        assert opt.counters.taken_branch_pki <= base.counters.taken_branch_pki

    def test_input_shift_midrun_is_handled(self, small_server, small_inputs):
        """OCOLOS's motivating scenario: the input changes after replacement;
        a second optimization re-specialises the layout."""
        process, ocolos, _r1 = run_ocolos_pipeline(
            small_server, small_inputs["readish"], seed=4, config=QUICK
        )
        process.run(max_transactions=200)
        process.set_input(small_inputs["writish"])
        process.run(max_transactions=200)
        r2 = ocolos.optimize_once()
        assert r2.generation == 2
        process.run(max_transactions=200)
        assert process.replacement_generation == 2
