"""Tests for the OCOLOS core: function-pointer map, injector, patcher, and
single-shot code replacement (incl. the paper's design principles)."""

import pytest

from repro.bolt.optimizer import run_bolt
from repro.core.funcptr_map import FunctionPointerMap
from repro.core.injector import CodeInjector
from repro.core.patcher import PatchReport, PointerPatcher, scan_direct_call_sites
from repro.core.replacement import CodeReplacer
from repro.errors import ReplacementError
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile
from repro.vm.ptrace import PtraceController
from repro.vm.unwind import AddressIndex


@pytest.fixture(scope="module")
def bolt_result(tiny):
    proc = tiny.process()
    proc.run(max_transactions=50)
    session = PerfSession(period=300, overhead=0.0)
    session.attach(proc)
    proc.run(max_instructions=80_000)
    session.detach()
    profile, _ = extract_profile(session.samples, tiny.binary)
    return run_bolt(tiny.program, tiny.binary, profile, compiler_options=tiny.options)


class TestCallSiteScan:
    def test_scan_finds_known_calls(self, tiny):
        sites = scan_direct_call_sites(tiny.binary)
        main_callees = {s.callee for s in sites["main"]}
        assert {"helper2", "switchy"} <= main_callees

    def test_sites_point_at_call_opcodes(self, tiny):
        from repro.isa.instructions import Opcode

        sites = scan_direct_call_sites(tiny.binary)
        text = tiny.binary.sections[".text"]
        for site_list in sites.values():
            for site in site_list:
                opbyte = text.data[site.addr - text.addr]
                assert opbyte == int(Opcode.CALL)


class TestFunctionPointerMap:
    def test_translates_moved_entries(self, tiny, bolt_result):
        fp = FunctionPointerMap(tiny.binary)
        added = fp.register_generation(bolt_result.binary)
        assert added > 0
        for name in bolt_result.hot_functions:
            new_addr = bolt_result.binary.functions[name].addr
            old_addr = tiny.binary.functions[name].addr
            if new_addr != old_addr:
                assert fp.wrap(new_addr) == old_addr

    def test_identity_for_c0_and_unknown(self, tiny, bolt_result):
        fp = FunctionPointerMap(tiny.binary)
        fp.register_generation(bolt_result.binary)
        c0 = tiny.binary.functions["leaf"].addr
        assert fp.wrap(c0) == c0
        assert fp.wrap(0xDEAD0000) == 0xDEAD0000

    def test_wrap_statistics(self, tiny, bolt_result):
        fp = FunctionPointerMap(tiny.binary)
        fp.register_generation(bolt_result.binary)
        fp.wrap(tiny.binary.functions["leaf"].addr)
        moved = bolt_result.binary.functions[bolt_result.hot_functions[0]].addr
        fp.wrap(moved)
        assert fp.wraps_total == 2
        assert fp.wraps_translated >= 1

    def test_install_routes_program_creations(self, tiny, bolt_result):
        proc = tiny.process()
        fp = FunctionPointerMap(tiny.binary)
        fp.register_generation(bolt_result.binary)
        fp.install(proc)
        proc.run(max_transactions=20)
        assert fp.wraps_total > 0


class TestInjector:
    def test_injects_generation_sections(self, tiny, bolt_result):
        proc = tiny.process()
        report = CodeInjector(proc).inject(bolt_result.binary)
        assert ".text.bolt1" in report.sections
        assert report.bytes_copied > 0
        # injected bytes are byte-identical to the BOLTed binary's
        section = bolt_result.binary.sections[".text.bolt1"]
        assert proc.address_space.read(section.addr, len(section.data)) == section.data

    def test_never_injects_org_text_or_data(self, tiny, bolt_result):
        proc = tiny.process()
        report = CodeInjector(proc).inject(bolt_result.binary)
        assert "bolt.org.text" not in report.sections
        assert ".data" not in report.sections

    def test_rejects_non_bolted(self, tiny):
        proc = tiny.process()
        with pytest.raises(ReplacementError):
            CodeInjector(proc).inject(tiny.binary)


class TestPatcher:
    def test_vtable_patch(self, tiny, bolt_result):
        proc = tiny.process()
        pt = PtraceController(proc)
        pt.pause()
        patcher = PointerPatcher(pt, tiny.binary)
        report = PatchReport()
        patcher.patch_vtables(bolt_result.binary, report)
        pt.resume()
        moved = patcher.moved_entries(bolt_result.binary)
        for vt in tiny.binary.vtables:
            for slot, func in enumerate(vt.slots):
                value = proc.address_space.read_u64(vt.slot_addr(slot))
                if func in moved:
                    assert value == moved[func][1]
                else:
                    assert value == tiny.binary.functions[func].addr

    def test_direct_call_patch_preserves_addresses(self, tiny, bolt_result):
        """Design principle #1: C_0 instruction addresses never change."""
        proc = tiny.process()
        text = tiny.binary.sections[".text"]
        before = proc.address_space.read(text.addr, len(text.data))
        pt = PtraceController(proc)
        pt.pause()
        patcher = PointerPatcher(pt, tiny.binary)
        report = PatchReport()
        patcher.patch_direct_calls(bolt_result.binary, ["main"], report)
        pt.resume()
        after = proc.address_space.read(text.addr, len(text.data))
        assert len(before) == len(after)
        # only rel32 immediates differ: opcode bytes unchanged
        diffs = [i for i, (x, y) in enumerate(zip(before, after)) if x != y]
        assert diffs  # something was patched
        sites = {s.addr for s in patcher.call_sites["main"]}
        for i in diffs:
            addr = text.addr + i
            assert any(site < addr <= site + 4 for site in sites)

    def test_patch_report_counts(self, tiny, bolt_result):
        proc = tiny.process()
        pt = PtraceController(proc)
        pt.pause()
        patcher = PointerPatcher(pt, tiny.binary)
        report = PatchReport()
        patcher.patch_direct_calls(bolt_result.binary, patcher.all_c0_functions(), report)
        pt.resume()
        assert report.call_sites_patched >= report.functions_patched > 0


class TestCodeReplacer:
    def run_replacement(self, tiny, bolt_result, **kwargs):
        proc = tiny.process()
        proc.run(max_transactions=50)
        replacer = CodeReplacer(proc, tiny.binary, **kwargs)
        report = replacer.replace(bolt_result)
        return proc, replacer, report

    def test_process_resumes_and_transacts(self, tiny, bolt_result):
        proc, _r, report = self.run_replacement(tiny, bolt_result)
        assert not proc.paused
        before = proc.counters_total().transactions
        proc.run(max_transactions=100)
        assert proc.counters_total().transactions >= before + 100

    def test_execution_reaches_new_generation(self, tiny, bolt_result):
        proc, _r, _report = self.run_replacement(tiny, bolt_result)
        proc.run(max_transactions=200)
        index = AddressIndex([bolt_result.binary])
        seen_new = False
        for _ in range(30):
            proc.run(max_instructions=97)
            for thread in proc.threads:
                if thread.pc >= 0x0200_0000:
                    seen_new = True
        assert seen_new

    def test_generation_tracking(self, tiny, bolt_result):
        proc, _r, report = self.run_replacement(tiny, bolt_result)
        assert proc.replacement_generation == 1
        assert report.generation == 1

    def test_wrong_generation_rejected(self, tiny, bolt_result):
        proc = tiny.process()
        proc.replacement_generation = 1  # pretend a replacement happened
        replacer = CodeReplacer(proc, tiny.binary)
        with pytest.raises(ReplacementError):
            replacer.replace(bolt_result)
        assert not proc.paused  # pause released on failure

    def test_requires_preload_agent(self, tiny, bolt_result):
        proc = tiny.process(with_agent=False)
        replacer = CodeReplacer(proc, tiny.binary)
        with pytest.raises(ReplacementError):
            replacer.replace(bolt_result)

    def test_pause_time_modeled(self, tiny, bolt_result):
        _p, _r, report = self.run_replacement(tiny, bolt_result)
        assert report.pause_seconds > 0
        assert report.pointer_writes == (
            report.patches.vtable_slots_patched + report.patches.call_sites_patched
        )

    def test_stack_live_subset_patched_by_default(self, tiny, bolt_result):
        _p, replacer, report = self.run_replacement(tiny, bolt_result)
        assert report.patches.stack_live_functions
        assert report.patches.stack_live_functions <= set(tiny.binary.functions)

    def test_patch_all_calls_patches_more(self, tiny, bolt_result):
        _p1, _r1, selective = self.run_replacement(tiny, bolt_result)
        _p2, _r2, everything = self.run_replacement(
            tiny, bolt_result, patch_all_calls=True
        )
        assert everything.patches.call_sites_patched >= selective.patches.call_sites_patched

    def test_function_pointers_stay_c0(self, tiny, bolt_result):
        """Design invariant: program-created pointers always reference C_0."""
        proc, replacer, _report = self.run_replacement(tiny, bolt_result)
        proc.run(max_transactions=100)  # main's mkfp re-executes under the hook
        value = proc.address_space.read_u64(tiny.binary.fp_slot_addr(0))
        assert value == tiny.binary.functions["leaf"].addr

    def test_c0_text_not_moved(self, tiny, bolt_result):
        proc, _r, _report = self.run_replacement(tiny, bolt_result)
        # C_0 region still mapped and still holds decodable code at the same base
        text = tiny.binary.sections[".text"]
        assert proc.address_space.is_mapped(text.addr)

    def test_speedup_not_negative(self, tiny, bolt_result):
        base = tiny.process(seed=21)
        base.run(max_transactions=100)
        d0 = base.run(max_transactions=400)
        proc, _r, _rep = self.run_replacement(tiny, bolt_result)
        proc.run(max_transactions=100)
        s0 = proc.counters_total()
        proc.run(max_transactions=400)
        d1 = proc.counters_total().delta(s0)
        assert proc.throughput_tps(d1) >= base.throughput_tps(d0) * 0.9
