"""Tests for BOLT: lifting, block reordering, function reordering, splitting
and the end-to-end optimizer."""

import pytest

from repro.bolt.bb_reorder import chain_layout_score, reorder_blocks
from repro.bolt.func_reorder import c3_order, pettis_hansen_order
from repro.bolt.mir import lift_binary, lift_function
from repro.bolt.optimizer import BoltOptions, run_bolt
from repro.bolt.splitting import split_hot_cold
from repro.errors import AlreadyBoltedError, BoltError, ProfileError
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile
from repro.profiling.profile import BoltProfile


@pytest.fixture(scope="module")
def tiny_profile(tiny):
    proc = tiny.process()
    proc.run(max_transactions=50)
    session = PerfSession(period=300, overhead=0.0)
    session.attach(proc)
    proc.run(max_instructions=80_000)
    session.detach()
    profile, _ = extract_profile(session.samples, tiny.binary)
    return profile


class TestMirLift:
    def test_lift_preserves_block_structure(self, tiny):
        mir = lift_function(tiny.binary, "helper0")
        assert set(mir.blocks) == {0, 1, 2, 3}
        assert mir.entry_addr == tiny.binary.functions["helper0"].addr

    def test_lift_finds_successors(self, tiny):
        mir = lift_function(tiny.binary, "helper0")
        assert set(mir.blocks[0].successors) == {2}  # taken target (ft is next)
        assert mir.blocks[1].successors == [3]

    def test_lift_finds_callees(self, tiny):
        mir = lift_function(tiny.binary, "main")
        assert "helper2" in mir.blocks[0].callees
        assert "switchy" in mir.blocks[0].callees

    def test_lift_unknown_function(self, tiny):
        with pytest.raises(BoltError):
            lift_function(tiny.binary, "ghost")

    def test_lift_binary_all(self, tiny):
        mirs = lift_binary(tiny.binary)
        assert set(mirs) == set(tiny.binary.functions)
        total = sum(m.size for m in mirs.values())
        assert total <= tiny.binary.text_size()


class TestBlockReorder:
    def test_heavy_edge_becomes_fallthrough(self):
        edges = {(0, 2): 100, (0, 1): 5, (2, 3): 100, (1, 3): 5}
        counts = {0: 105, 1: 5, 2: 100, 3: 105}
        order = reorder_blocks(4, edges, counts)
        assert order[0] == 0
        assert order[1] == 2  # hottest successor adjacent
        assert chain_layout_score(order, edges) >= 200

    def test_entry_always_first(self):
        edges = {(3, 0): 1000}  # heavy edge INTO entry must not displace it
        order = reorder_blocks(4, edges, {0: 1, 3: 1000})
        assert order[0] == 0

    def test_permutation_property(self):
        edges = {(0, 1): 3, (1, 2): 2, (2, 4): 9, (0, 3): 1}
        order = reorder_blocks(5, edges, {})
        assert sorted(order) == list(range(5))

    def test_no_profile_keeps_valid_order(self):
        order = reorder_blocks(4, {}, {})
        assert sorted(order) == list(range(4))
        assert order[0] == 0

    def test_score_counts_only_adjacent(self):
        edges = {(0, 1): 10, (1, 0): 7}
        assert chain_layout_score([0, 1], edges) == 10
        assert chain_layout_score([1, 0], edges) == 7

    def test_improves_over_source_order(self):
        # source order is pessimal: hot path 0->2->4, cold 1, 3
        edges = {(0, 2): 50, (2, 4): 50, (0, 1): 1, (2, 3): 1}
        source = list(range(5))
        optimized = reorder_blocks(5, edges, {0: 51, 2: 50, 4: 50, 1: 1, 3: 1})
        assert chain_layout_score(optimized, edges) > chain_layout_score(source, edges)


class TestFunctionReorder:
    def test_c3_places_caller_before_callee(self):
        hotness = {"a": 100, "b": 90, "c": 10}
        calls = {("a", "b"): 50}
        order = c3_order(hotness, calls)
        assert order.index("a") < order.index("b")

    def test_c3_respects_cluster_size_cap(self):
        hotness = {"a": 100, "b": 90}
        calls = {("a", "b"): 50}
        sizes = {"a": 70_000, "b": 70_000}
        order = c3_order(hotness, calls, sizes, max_cluster_bytes=100_000)
        assert sorted(order) == ["a", "b"]  # no merge, both placed

    def test_c3_covers_all_functions(self):
        hotness = {f"f{i}": i for i in range(10)}
        calls = {("f9", "f8"): 5, ("f8", "f7"): 4}
        order = c3_order(hotness, calls)
        assert sorted(order) == sorted(hotness)

    def test_ph_merges_heaviest_first(self):
        hotness = {"a": 10, "b": 10, "c": 10}
        calls = {("a", "c"): 100, ("a", "b"): 1}
        order = pettis_hansen_order(hotness, calls)
        assert abs(order.index("a") - order.index("c")) == 1

    def test_ph_direction_blind(self):
        hotness = {"a": 10, "b": 10}
        forward = pettis_hansen_order(hotness, {("a", "b"): 5})
        backward = pettis_hansen_order(hotness, {("b", "a"): 5})
        assert set(forward) == set(backward) == {"a", "b"}


class TestSplitting:
    def test_cold_blocks_exiled(self):
        split = split_hot_cold([0, 2, 1, 3], {0: 10, 2: 8}, entry=0)
        assert split.hot == (0, 2)
        assert split.cold == (1, 3)
        assert split.is_split

    def test_entry_always_hot_even_if_cold(self):
        split = split_hot_cold([1, 0, 2], {1: 5}, entry=0)
        assert split.hot[0] == 0

    def test_threshold(self):
        split = split_hot_cold([0, 1, 2], {0: 10, 1: 3, 2: 1}, min_count=3)
        assert 1 in split.hot
        assert 2 in split.cold

    def test_no_cold_blocks(self):
        split = split_hot_cold([0, 1], {0: 5, 1: 5})
        assert not split.is_split


class TestOptimizer:
    def test_bolted_binary_structure(self, tiny, tiny_profile):
        result = run_bolt(tiny.program, tiny.binary, tiny_profile,
                          compiler_options=tiny.options)
        binary = result.binary
        assert binary.bolted and binary.bolt_generation == 1
        assert "bolt.org.text" in binary.sections
        assert ".text.bolt1" in binary.sections
        # original text preserved at original address
        org = binary.sections["bolt.org.text"]
        assert org.addr == tiny.binary.sections[".text"].addr

    def test_hot_functions_moved_high(self, tiny, tiny_profile):
        result = run_bolt(tiny.program, tiny.binary, tiny_profile,
                          compiler_options=tiny.options)
        for name in result.hot_functions:
            new = result.binary.functions[name].addr
            assert new >= 0x0200_0000

    def test_cold_functions_stay_put(self, tiny, tiny_profile):
        result = run_bolt(tiny.program, tiny.binary, tiny_profile,
                          compiler_options=tiny.options)
        hot = set(result.hot_functions)
        for name, info in tiny.binary.functions.items():
            if name not in hot:
                assert result.binary.functions[name].addr == info.addr

    def test_vtables_updated_to_new_entries(self, tiny, tiny_profile):
        result = run_bolt(tiny.program, tiny.binary, tiny_profile,
                          compiler_options=tiny.options)
        binary = result.binary
        data = binary.sections[".data"]
        for vt in binary.vtables:
            for slot, func in enumerate(vt.slots):
                off = vt.slot_addr(slot) - data.addr
                value = int.from_bytes(data.data[off : off + 8], "little")
                assert value == binary.functions[func].addr

    def test_refuses_rebolt(self, tiny, tiny_profile):
        result = run_bolt(tiny.program, tiny.binary, tiny_profile,
                          compiler_options=tiny.options)
        with pytest.raises(AlreadyBoltedError):
            run_bolt(tiny.program, result.binary, tiny_profile,
                     compiler_options=tiny.options)

    def test_rebolt_with_override(self, tiny, tiny_profile):
        result = run_bolt(tiny.program, tiny.binary, tiny_profile,
                          compiler_options=tiny.options)
        # remap the profile against the new binary by re-collecting: here we
        # simply rebolt with the same (label-level) profile
        result2 = run_bolt(
            tiny.program,
            result.binary,
            tiny_profile,
            options=BoltOptions(allow_rebolt=True),
            compiler_options=tiny.options,
            generation=2,
            cold_reference=tiny.binary,
        )
        assert result2.binary.bolt_generation == 2
        assert ".text.bolt2" in result2.binary.sections

    def test_empty_profile_rejected(self, tiny):
        with pytest.raises(ProfileError):
            run_bolt(tiny.program, tiny.binary, BoltProfile(),
                     compiler_options=tiny.options)

    def test_no_split_option(self, tiny, tiny_profile):
        result = run_bolt(
            tiny.program, tiny.binary, tiny_profile,
            options=BoltOptions(split_functions=False),
            compiler_options=tiny.options,
        )
        assert result.functions_split == 0
        assert f".text.bolt1.cold" not in result.binary.sections

    def test_function_order_variants(self, tiny, tiny_profile):
        for mode in ("c3", "ph", "none"):
            result = run_bolt(
                tiny.program, tiny.binary, tiny_profile,
                options=BoltOptions(function_order=mode),
                compiler_options=tiny.options,
            )
            assert result.hot_functions
        with pytest.raises(BoltError):
            run_bolt(
                tiny.program, tiny.binary, tiny_profile,
                options=BoltOptions(function_order="bogus"),
                compiler_options=tiny.options,
            )

    def test_bolted_binary_runs_and_is_faster_or_equal(self, tiny, tiny_profile):
        from repro.vm.process import Process

        result = run_bolt(tiny.program, tiny.binary, tiny_profile,
                          compiler_options=tiny.options)
        p_old = Process(tiny.binary, tiny.program, tiny.input_spec(), n_threads=2, seed=11)
        p_new = Process(result.binary, tiny.program, tiny.input_spec(), n_threads=2, seed=11)
        p_old.run(max_transactions=200)
        p_new.run(max_transactions=200)
        d_old = p_old.run(max_transactions=600)
        d_new = p_new.run(max_transactions=600)
        # the tiny program's footprint fits the L1i either way, so parity is
        # the expectation; the reordered layout must at least not regress
        assert p_new.throughput_tps(d_new) >= p_old.throughput_tps(d_old) * 0.9

    def test_bolted_binary_reduces_taken_branches(self, tiny, tiny_profile):
        from repro.vm.process import Process

        result = run_bolt(tiny.program, tiny.binary, tiny_profile,
                          compiler_options=tiny.options)
        p_old = Process(tiny.binary, tiny.program, tiny.input_spec(), n_threads=2, seed=11)
        p_new = Process(result.binary, tiny.program, tiny.input_spec(), n_threads=2, seed=11)
        d_old = p_old.run(max_transactions=400)
        d_new = p_new.run(max_transactions=400)
        assert d_new.taken_branch_pki <= d_old.taken_branch_pki


class TestReorderEdgeCases:
    """Degenerate profiles and tie-breaking (paper §II-B/C corner cases)."""

    def test_chain_layout_score_empty_profile(self):
        assert chain_layout_score([0, 1, 2], {}) == 0
        assert chain_layout_score([], {(0, 1): 10}) == 0

    def test_chain_layout_score_single_block(self):
        assert chain_layout_score([0], {(0, 0): 99}) == 0

    def test_chain_layout_score_counts_only_adjacent_pairs(self):
        edges = {(0, 1): 7, (1, 2): 5, (0, 2): 100}
        assert chain_layout_score([0, 1, 2], edges) == 12
        assert chain_layout_score([1, 0, 2], edges) == 100

    def test_reorder_blocks_empty_profile_is_identity(self):
        assert reorder_blocks(5, {}, {}) == [0, 1, 2, 3, 4]

    def test_reorder_blocks_single_block(self):
        assert reorder_blocks(1, {}, {0: 100}) == [0]

    def test_reorder_blocks_tied_weights_deterministic(self):
        # two equally heavy successors: the smaller block id wins the
        # fallthrough slot, and insertion order of the dict cannot matter
        edges_a = {(0, 2): 50, (0, 1): 50}
        edges_b = {(0, 1): 50, (0, 2): 50}
        counts = {0: 100, 1: 50, 2: 50}
        assert reorder_blocks(3, edges_a, counts) == reorder_blocks(3, edges_b, counts)
        assert reorder_blocks(3, edges_a, counts) == [0, 1, 2]

    def test_c3_order_empty_profile(self):
        assert c3_order({}, {}) == []
        assert pettis_hansen_order({}, {}) == []

    def test_c3_order_single_function(self):
        assert c3_order({"f": 10}, {}) == ["f"]
        assert pettis_hansen_order({"f": 10}, {}) == ["f"]

    def test_c3_order_ignores_edges_to_unknown_functions(self):
        order = c3_order({"a": 5}, {("a", "ghost"): 100, ("ghost", "a"): 100})
        assert order == ["a"]

    def test_c3_order_tied_weights_deterministic(self):
        hot = {"a": 10, "b": 10, "c": 10}
        edges_a = {("a", "c"): 5, ("b", "c"): 5}
        edges_b = {("b", "c"): 5, ("a", "c"): 5}
        assert c3_order(hot, edges_a) == c3_order(hot, edges_b)
        assert pettis_hansen_order(hot, edges_a) == pettis_hansen_order(hot, edges_b)

    def test_orders_are_permutations(self):
        from hypothesis import given, settings, strategies as st

        names = st.sampled_from(["f0", "f1", "f2", "f3", "f4", "f5"])

        @settings(max_examples=50, deadline=None)
        @given(
            hotness=st.dictionaries(names, st.integers(0, 1000), min_size=1),
            edges=st.dictionaries(
                st.tuples(names, names), st.integers(0, 1000), max_size=12
            ),
        )
        def check(hotness, edges):
            for fn in (c3_order, pettis_hansen_order):
                order = fn(hotness, edges)
                assert sorted(order) == sorted(hotness)

        check()

    def test_block_order_is_permutation(self):
        from hypothesis import given, settings, strategies as st

        ids = st.integers(0, 7)

        @settings(max_examples=50, deadline=None)
        @given(
            n=st.integers(1, 8),
            edges=st.dictionaries(st.tuples(ids, ids), st.integers(0, 500), max_size=16),
            counts=st.dictionaries(ids, st.integers(0, 500), max_size=8),
        )
        def check(n, edges, counts):
            order = reorder_blocks(n, edges, counts)
            assert sorted(order) == list(range(n))
            assert order[0] == 0  # entry first

        check()
