"""Tests for the next-line instruction prefetcher (§VII related-work model)."""

import pytest

from repro.uarch.frontend import FrontEnd, UarchParams


class TestNextLinePrefetch:
    def test_sequential_stream_mostly_hidden(self):
        """A purely sequential fetch stream sees its misses largely hidden."""
        plain = FrontEnd(UarchParams())
        pf = FrontEnd(UarchParams(next_line_prefetch=True))
        addr = 0x10_0000
        for _ in range(200):
            plain.fetch_run(addr, 60, 12)
            pf.fetch_run(addr, 60, 12)
            addr += 60
        assert pf.counters.cyc_l1i < plain.counters.cyc_l1i * 0.5

    def test_taken_branches_defeat_prefetch(self):
        """Jumping far away every block leaves the prefetcher useless —
        exactly why code layout still matters (paper §VII)."""
        pf = FrontEnd(UarchParams(next_line_prefetch=True))
        plain = FrontEnd(UarchParams())
        import random

        rng = random.Random(3)
        targets = [0x10_0000 + 4096 * k for k in range(512)]
        for _ in range(600):
            addr = rng.choice(targets)
            pf.fetch_run(addr, 24, 5)
            plain.fetch_run(addr, 24, 5)
        # scattered control flow: prefetching saves (almost) nothing
        assert pf.counters.cyc_l1i > plain.counters.cyc_l1i * 0.85

    def test_prefetch_probe_not_counted_as_demand(self):
        pf = FrontEnd(UarchParams(next_line_prefetch=True))
        pf.fetch_run(0x10_0000, 60, 12)
        demand_lines = 1  # 60 bytes from an aligned base = 1 line
        assert pf.counters.l1i_hits + pf.counters.l1i_misses == demand_lines

    def test_disabled_by_default(self):
        assert not UarchParams().next_line_prefetch
