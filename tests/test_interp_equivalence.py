"""Differential oracle: superblock fast path vs the reference stepper.

The superblock execution layer (:mod:`repro.vm.superblock`) promises to be a
pure speed change: bit-identical perf counters (including float cycle
buckets), LBR streams, RNG consumption, and predictor/BTB/RAS/cache state
against the preserved single-run reference stepper
(:meth:`repro.vm.interpreter.Interpreter.step`).  These tests enforce that
contract by running the same seeded workload under both steppers and
comparing complete machine state — any drift in the inlined counter
bookkeeping, chain formation, or invalidation logic fails here.
"""

from __future__ import annotations

import struct

import pytest

from repro.binary.linker import link_program
from repro.core.patcher import scan_direct_call_sites
from repro.isa.instructions import INSTRUCTION_SIZES, Opcode
from repro.obs.metrics import VMCounters
from repro.uarch.perfcounters import _FIELD_NAMES
from repro.vm.process import Process
from repro.workloads.generator import WorkloadParams, build_workload
from repro.workloads.memcached import memcached_inputs, memcached_like

_I32 = struct.Struct("<i")


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _launch(workload, spec, *, n_threads, seed, superblocks):
    binary = link_program(workload.program, options=workload.options)
    proc = Process(
        binary, workload.program, input_spec=spec, n_threads=n_threads, seed=seed
    )
    proc.lbr_enabled = True
    proc.interpreter.use_superblocks = superblocks
    return proc


def _machine_state(proc):
    """Everything observable: counters (bit-exact via repr), uarch
    structures, architectural thread state, LBR rings, RNG state."""
    state = {"threads": [], "lbr": proc.lbr_rings, "rng": proc.rng.getstate()}
    state["counted"] = dict(proc.behaviour.counted_state)
    for thread in proc.threads:
        state["threads"].append(
            (thread.pc, thread.sp, thread.state, thread.instructions)
        )
    for i, fe in enumerate(proc.frontends):
        state[f"counters{i}"] = {
            name: repr(getattr(fe.counters, name)) for name in _FIELD_NAMES
        }
        pred = fe.predictor
        state[f"pred{i}"] = (
            list(pred._counters),
            pred._history,
            pred.predictions,
            pred.mispredictions,
        )
        btb = fe.btb
        state[f"btb{i}"] = (
            [dict(s) for s in btb._sets],
            btb.hits,
            btb.misses,
            btb.target_mismatches,
        )
        ras = fe.ras
        state[f"ras{i}"] = (list(ras._stack), ras.predictions, ras.mispredictions)
        for cname in ("l1i", "l2"):
            cache = getattr(fe, cname)
            state[f"{cname}{i}"] = (
                cache.hits,
                cache.misses,
                [list(s) for s in cache._sets],
            )
        tlb = fe.itlb.cache
        state[f"itlb{i}"] = (tlb.hits, tlb.misses, [list(s) for s in tlb._sets])
    return state


def _run_pair(workload, spec, *, n_threads=4, seed=1612, txns=1000, mid=None):
    """Run both steppers over the same schedule; return their states.

    ``mid(proc)``, when given, is applied to both processes at the same
    point (between two equal-budget run segments).
    """
    states = []
    for superblocks in (False, True):
        proc = _launch(
            workload, spec, n_threads=n_threads, seed=seed, superblocks=superblocks
        )
        if mid is None:
            proc.run(max_transactions=txns)
        else:
            proc.run(max_transactions=txns // 2)
            mid(proc)
            proc.run(max_transactions=txns - txns // 2)
        states.append(_machine_state(proc))
    return states


def _assert_identical(ref_state, fast_state):
    assert ref_state.keys() == fast_state.keys()
    for key in ref_state:
        assert ref_state[key] == fast_state[key], f"state diverged: {key}"


def _random_workload(seed):
    """A small randomized server program; shape varies with the seed."""
    return build_workload(
        WorkloadParams(
            name=f"rand{seed}",
            n_work_functions=40 + seed % 3 * 12,
            n_utility_functions=12,
            n_callback_functions=8,
            n_op_types=4,
            steps_per_op=(8, 16),
            n_subsystems=3,
            parse_blocks=8,
            n_data_classes=0 if seed % 2 else 6,
            data_vtable_slots=0 if seed % 2 else 3,
            vcall_step_fraction=0.0 if seed % 2 else 0.2,
            n_jmpbufs=2 if seed % 3 == 0 else 0,
            syscall_cycles=90.0,
            n_threads=2 + seed % 2,
            scale=1.0,
            seed=seed,
            dispatch_mode="switch" if seed % 2 else "vcall",
        )
    )


# ----------------------------------------------------------------------
# tests
# ----------------------------------------------------------------------


def test_memcached_bit_identical():
    workload = memcached_like()
    spec = memcached_inputs(workload)["set10_get90"]
    ref, fast = _run_pair(workload, spec, txns=2000)
    _assert_identical(ref, fast)


@pytest.mark.parametrize("seed", [101, 202, 303, 404, 505])
def test_randomized_workloads_bit_identical(seed):
    workload = _random_workload(seed)
    mix = {op: 1.0 + (i + seed) % 3 for i, op in enumerate(workload.op_names)}
    spec = workload.make_input(
        f"mix{seed}", theta=(seed % 5) / 4.0, op_mix=mix, seed=seed
    )
    ref, fast = _run_pair(
        workload, spec, n_threads=workload.params.n_threads, seed=seed, txns=400
    )
    _assert_identical(ref, fast)


def test_superblocks_actually_chain():
    """Guard against the fast path silently degenerating to single runs."""
    workload = memcached_like()
    spec = memcached_inputs(workload)["set10_get90"]
    proc = _launch(workload, spec, n_threads=4, seed=1612, superblocks=True)
    bag = VMCounters()
    proc.interpreter.set_observer(bag)
    proc.run(max_transactions=1000)
    assert bag.superblocks > 0
    assert bag.runs > bag.superblocks  # chains average > 1 run


def test_midrun_code_patch_invalidates_chains():
    """Retargeting a direct call mid-run must be picked up by both steppers
    at the same boundary — stale superblocks would either diverge from the
    reference or keep calling the old callee."""
    workload = memcached_like()
    spec = memcached_inputs(workload)["set10_get90"]

    def pick_site(proc):
        sites = scan_direct_call_sites(proc.binary)
        entry = proc.binary.entry
        fn = entry if entry in sites else sorted(sites)[0]
        site = sites[fn][0]
        current = site.callee
        # Retarget to a different function that is also a direct-call
        # callee somewhere (so it is a plain, returning function).
        for other_sites in sites.values():
            for other in other_sites:
                if other.callee != current:
                    return site, proc.binary.functions[other.callee].addr
        raise AssertionError("workload has no alternative callee")

    epochs = []

    def patch(proc):
        site, new_target = pick_site(proc)
        interp = proc.interpreter
        before = interp._epoch
        size = INSTRUCTION_SIZES[Opcode.CALL]
        rel = new_target - (site.addr + size)
        proc.address_space.write(site.addr + 1, _I32.pack(rel))
        # The executable-region write observer must have dropped every
        # cached chain and bumped the epoch.
        assert interp._epoch > before
        assert not interp._sb_cache
        epochs.append(interp._epoch)

    ref, fast = _run_pair(workload, spec, txns=1200, mid=patch)
    _assert_identical(ref, fast)
    assert len(epochs) == 2  # patch ran under both steppers

    # Control: without the patch the run ends in a different state, i.e.
    # the patched bytes really were re-decoded and executed.
    ref_unpatched, fast_unpatched = _run_pair(workload, spec, txns=1200)
    _assert_identical(ref_unpatched, fast_unpatched)
    assert fast != fast_unpatched


def test_bias_flip_mid_run_bit_identical():
    """Invert the workload's branch mix after guarded chains have trained:
    the speculated directions go cold, chains must deopt, drop, and
    re-form for the new bias — with every counter still bit-identical to
    the reference stepper across the whole flip."""
    workload = memcached_like()
    spec = memcached_inputs(workload)["set10_get90"]
    # Mirror-image input: theta and the op mix both inverted, so branch
    # sites trained hot under ``spec`` flip direction.
    flipped = workload.make_input(
        "flipped", theta=0.88, op_mix={"get_op": 1.0, "set_op": 9.0}
    )

    ref, fast = _run_pair(
        workload, spec, txns=2000, mid=lambda proc: proc.set_input(flipped)
    )
    _assert_identical(ref, fast)

    # The flip visibly exercises the deopt machinery: guard exits climb
    # faster after the shift than during warmed-up steady state before it.
    proc = _launch(workload, spec, n_threads=4, seed=1612, superblocks=True)
    bag = VMCounters()
    proc.interpreter.set_observer(bag)
    proc.run(max_transactions=1000)
    warm_guards, warm_exits = bag.guards, bag.guard_exits
    proc.run(max_transactions=1000)
    steady_exits = bag.guard_exits - warm_exits
    pre_flip = bag.guard_exits
    proc.set_input(flipped)
    proc.run(max_transactions=1000)
    flip_exits = bag.guard_exits - pre_flip
    assert warm_guards > 0 and warm_exits > 0
    assert flip_exits > steady_exits  # the flip forced extra deopts


def test_guarded_successor_patch_invalidates_mid_quantum():
    """An executable write landing while guarded chains are live (the wrap
    hook fires from inside an executing run) must drop speculated chains
    exactly like statically-certain ones: the next dispatch re-forms from
    fresh decode, bit-identical to the reference stepper."""
    from repro.vm.superblock import STEP_GUARD_NOT_TAKEN, STEP_GUARD_TAKEN

    workload = memcached_like()
    spec = memcached_inputs(workload)["set10_get90"]
    seen = []

    def mid(proc):
        entry_addr = proc.binary.symbol(proc.binary.entry)
        interp = proc.interpreter

        def hook(func_addr):
            cache = interp._sb_cache
            guarded = sum(
                1
                for sb in cache.values()
                for step in sb.steps
                if step[6] in (STEP_GUARD_TAKEN, STEP_GUARD_NOT_TAKEN)
            )
            data = proc.address_space.read(entry_addr, 4)
            proc.address_space.write(entry_addr, data)  # real code write
            seen.append((interp.use_superblocks, guarded, len(interp._sb_cache)))
            return func_addr

        proc.set_wrap_hook(hook)

    ref, fast = _run_pair(workload, spec, txns=1600, mid=mid)
    _assert_identical(ref, fast)
    fast_firings = [s for s in seen if s[0]]
    assert fast_firings, "wrap hook never fired under the superblock stepper"
    # At least one write landed while a guarded chain was cached, and
    # every write left the cache empty (guarded chains dropped too).
    assert any(guarded > 0 for _, guarded, _ in fast_firings)
    assert all(left == 0 for _, _, left in fast_firings)


def test_formation_races_longjmp_target():
    """setjmp/longjmp workloads: chains form through call frames that a
    longjmp later unwinds, so speculated return sites (chained RETs) go
    stale and must deopt through the side exit; formation also restarts at
    longjmp targets that sit mid-chain.  Everything stays bit-identical."""
    workload = build_workload(
        WorkloadParams(
            name="longjmp_race",
            n_work_functions=48,
            n_utility_functions=12,
            n_callback_functions=8,
            n_op_types=4,
            steps_per_op=(8, 16),
            n_subsystems=3,
            parse_blocks=8,
            vcall_step_fraction=0.0,
            n_jmpbufs=3,
            syscall_cycles=90.0,
            n_threads=2,
            scale=1.0,
            seed=906,
            dispatch_mode="switch",
        )
    )
    mix = {op: 1.0 + i % 3 for i, op in enumerate(workload.op_names)}
    spec = workload.make_input("race", theta=0.3, op_mix=mix, seed=906)
    ref, fast = _run_pair(workload, spec, n_threads=2, seed=906, txns=800)
    _assert_identical(ref, fast)

    proc = _launch(workload, spec, n_threads=2, seed=906, superblocks=True)
    bag = VMCounters()
    proc.interpreter.set_observer(bag)
    proc.run(max_transactions=800)
    assert bag.guards > 0  # speculation engaged despite longjmp traffic
    assert bag.runs > bag.superblocks


def test_wrap_hook_code_write_breaks_chain_mid_quantum():
    """A code write issued *by an executing run* (wrap hook on MKFP, the
    ``wrapFuncPtrCreation`` path) bumps the epoch mid-chain; the dispatcher
    must finish the in-flight run and stop the chain, exactly like the
    reference stepper's per-run cadence."""
    workload = memcached_like()
    spec = memcached_inputs(workload)["set10_get90"]
    calls = []

    def mid(proc):
        entry_addr = proc.binary.symbol(proc.binary.entry)
        epochs = []
        calls.append(epochs)

        def hook(func_addr):
            # Rewrite an executable byte range with its own contents: a
            # semantic no-op, but a real executable-region write, so the
            # interpreter invalidates mid-run.
            data = proc.address_space.read(entry_addr, 4)
            proc.address_space.write(entry_addr, data)
            epochs.append(proc.interpreter._epoch)
            return func_addr

        proc.set_wrap_hook(hook)

    ref, fast = _run_pair(workload, spec, txns=1200, mid=mid)
    _assert_identical(ref, fast)
    # The hook fired under both steppers (set_op creates function pointers)
    # at the same points, and each firing bumped that process's epoch.
    assert len(calls) == 2
    ref_epochs, fast_epochs = calls
    assert ref_epochs == fast_epochs and len(ref_epochs) >= 1
    assert fast_epochs == sorted(set(fast_epochs))
