"""Tests for the inter-procedural stitch layout pass and huge-page text mode.

Covers the `repro.bolt.stitch` pass (cross-function block stitching + page
packing), the size-tagged unified iTLB, the loader/preload huge-page plumbing
and the fleet/scenario configuration surface.
"""

import pytest

from repro.bolt.optimizer import BoltOptions, run_bolt
from repro.bolt.stitch import MAX_SPLICE_BYTES, StitchStats
from repro.errors import BoltError
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile
from repro.uarch.tlb import HUGE_PAGE_BITS, HUGE_TAG, PAGE_BITS, Tlb, page_span
from repro.vm.process import Process


@pytest.fixture(scope="module")
def tiny_profile(tiny):
    proc = tiny.process()
    proc.run(max_transactions=50)
    session = PerfSession(period=300, overhead=0.0)
    session.attach(proc)
    proc.run(max_instructions=80_000)
    session.detach()
    profile, _ = extract_profile(session.samples, tiny.binary)
    return profile


@pytest.fixture(scope="module")
def bolted(tiny, tiny_profile):
    return run_bolt(tiny.program, tiny.binary, tiny_profile,
                    compiler_options=tiny.options)


@pytest.fixture(scope="module")
def stitched(tiny, tiny_profile):
    return run_bolt(tiny.program, tiny.binary, tiny_profile,
                    options=BoltOptions(layout="stitch"),
                    compiler_options=tiny.options)


@pytest.fixture(scope="module")
def stitched_hp(tiny, tiny_profile):
    return run_bolt(tiny.program, tiny.binary, tiny_profile,
                    options=BoltOptions(layout="stitch", huge_pages=True),
                    compiler_options=tiny.options)


def _block_labels(binary):
    """Every placed block label, with multiplicity."""
    labels = []
    for info in binary.functions.values():
        labels.extend(b.label for b in info.blocks)
    return sorted(labels)


class TestStitchPass:
    def test_stats_populated(self, stitched):
        stats = stitched.stitch_stats
        assert isinstance(stats, StitchStats)
        assert stats.chains >= 1
        assert stats.splices >= 1  # tiny's main hotly calls helpers
        assert stats.hot_text_bytes > 0
        assert stats.pages_used >= 1
        assert stats.huge_pages_used == 0  # huge pages were off

    def test_huge_page_stats(self, stitched_hp):
        stats = stitched_hp.stitch_stats
        assert stats.huge_pages_used >= 1
        assert stats.hot_text_bytes <= stats.huge_pages_used * (1 << HUGE_PAGE_BITS)

    def test_stats_jsonable(self, stitched):
        d = stitched.stitch_stats.to_jsonable()
        assert d["splices"] == stitched.stitch_stats.splices
        assert all(isinstance(v, int) for v in d.values())

    def test_layout_is_block_permutation(self, bolted, stitched):
        # stitching moves blocks across sections but must place every block
        # exactly once — same multiset of labels as the default BOLT layout
        assert _block_labels(stitched.binary) == _block_labels(bolted.binary)

    def test_layout_differs_from_bolt(self, bolted, stitched):
        hot_bolt = bolted.binary.sections[".text.bolt1"]
        hot_stitch = stitched.binary.sections[".text.bolt1"]
        assert hot_bolt.data != hot_stitch.data

    def test_default_pipeline_unchanged(self, tiny, tiny_profile, bolted):
        again = run_bolt(tiny.program, tiny.binary, tiny_profile,
                         options=BoltOptions(layout="bolt", huge_pages=False),
                         compiler_options=tiny.options)
        assert again.stitch_stats is None
        for a, b in zip(bolted.binary.sections.values(), again.binary.sections.values()):
            assert (a.name, a.addr, a.data, a.hugepage) == (b.name, b.addr, b.data, b.hugepage)

    def test_unknown_layout_rejected(self, tiny, tiny_profile):
        with pytest.raises(BoltError):
            run_bolt(tiny.program, tiny.binary, tiny_profile,
                     options=BoltOptions(layout="exttsp"),
                     compiler_options=tiny.options)

    def test_splice_cap_is_a_page(self):
        assert MAX_SPLICE_BYTES == 1 << PAGE_BITS


class TestStitchSemantics:
    """Program behaviour must be layout-invariant (the equivalence oracle).

    Run stop points are quantum-quantized and run boundaries are
    layout-dependent, so RNG state / thread PCs may legitimately differ after
    ``run(max_transactions=N)``; the cross-layout oracle is the counted-site
    outcome state (exact) plus the transaction count (within one quantum's
    overshoot), matching the fleet's semantic digest.
    """

    def _digest(self, tiny, binary, n=300):
        proc = Process(binary, tiny.program, tiny.input_spec(), n_threads=2, seed=11)
        proc.run(max_transactions=n)
        return (proc.counters_total().transactions,
                tuple(sorted(proc.behaviour.counted_state.items())))

    def test_counted_state_matches_across_layouts(self, tiny, bolted, stitched, stitched_hp):
        txn0, counted0 = self._digest(tiny, tiny.binary)
        for result in (bolted, stitched, stitched_hp):
            txn, counted = self._digest(tiny, result.binary)
            assert counted == counted0
            assert abs(txn - txn0) <= 1


class TestHugePageModel:
    def test_page_span_base_pages(self):
        assert page_span(0x40_1000, 0x40_1fff, ()) == (0x401, 0x401)
        lo, hi = page_span(0x40_0ff0, 0x40_100f, ())
        assert (lo, hi) == (0x400, 0x401)

    def test_page_span_huge_tagging(self):
        ranges = ((0x200_0000, 0x400_0000),)
        lo, hi = page_span(0x200_0000, 0x200_0000 + (1 << 20), ranges)
        assert lo == hi == (HUGE_TAG | (0x200_0000 >> HUGE_PAGE_BITS))
        # outside the range: plain 4 KiB numbering, untagged
        lo, hi = page_span(0x40_0000, 0x40_0000, ranges)
        assert lo == (0x40_0000 >> PAGE_BITS) and not (lo & HUGE_TAG)

    def test_tlb_one_huge_entry_covers_512_base_pages(self):
        tlb = Tlb(entries=8, ways=8)
        base = 0x200_0000
        assert not tlb.access_addr(base, huge=True)          # cold miss
        assert tlb.access_addr(base + (1 << 20), huge=True)  # same 2 MiB page
        assert tlb.access_addr(base + (1 << 21) - 1, huge=True)
        assert tlb.misses == 1

    def test_tlb_sizes_do_not_alias(self):
        # a huge entry and a base entry for the same address coexist: tagged
        # page numbers keep the two translation sizes distinct
        tlb = Tlb(entries=8, ways=8)
        addr = 0x200_0000
        assert not tlb.access_addr(addr, huge=True)
        assert not tlb.access_addr(addr)  # base-page lookup still misses
        assert tlb.access_addr(addr, huge=True)
        assert tlb.access_addr(addr)

    def test_hot_section_carries_hugepage_flag(self, stitched, stitched_hp):
        assert stitched_hp.binary.sections[".text.bolt1"].hugepage
        cold = stitched_hp.binary.sections.get(".text.bolt1.cold")
        assert cold is None or not cold.hugepage  # only hot text gets 2 MiB pages
        assert not any(s.hugepage for s in stitched.binary.sections.values())

    def test_loader_and_frontends_see_huge_ranges(self, tiny, stitched_hp):
        proc = Process(stitched_hp.binary, tiny.program, tiny.input_spec(),
                       n_threads=1, seed=3)
        ranges = proc.address_space.hugepage_ranges()
        assert ranges
        hot = next(s for s in stitched_hp.binary.sections.values() if s.hugepage)
        assert any(lo <= hot.addr < hi for lo, hi in ranges)
        for fe in proc.frontends:
            assert fe.hugepage_ranges == ranges

    def test_decoded_runs_are_huge_tagged(self, tiny, stitched_hp):
        proc = Process(stitched_hp.binary, tiny.program, tiny.input_spec(),
                       n_threads=1, seed=3)
        proc.run(max_transactions=50)
        hot = next(s for s in stitched_hp.binary.sections.values() if s.hugepage)
        tagged = [run for pc, run in proc.interpreter._cache.items()
                  if hot.contains(pc)]
        assert tagged
        assert all(run.first_page & HUGE_TAG for run in tagged)

    def test_preload_map_region_syncs_ranges(self, tiny):
        from repro.vm.preload import PreloadAgent

        proc = tiny.process(with_agent=False)
        agent = PreloadAgent(proc)
        assert proc.address_space.hugepage_ranges() == ()
        start = 0x4000_0000
        agent.map_region(start, 1 << 21, "hp.test", hugepage=True)
        assert (start, start + (1 << 21)) in proc.address_space.hugepage_ranges()
        for fe in proc.frontends:
            assert (start, start + (1 << 21)) in fe.hugepage_ranges


class TestLinkerFragments:
    def _full_layout(self, binary, **overrides):
        """A Layout placing every function of ``binary`` in source order."""
        from repro.binary.binaryfile import Fragment, Layout, SectionLayout
        from repro.binary.binaryfile import TEXT_BASE

        fragments = []
        for name, info in binary.functions.items():
            ids = tuple(int(b.label.split("#")[1]) for b in info.blocks)
            fragments.append(Fragment(name, ids, align=overrides.get(name, 16)))
        return Layout(sections=[SectionLayout(name=".text", base=TEXT_BASE,
                                              fragments=fragments)])

    def test_fragment_align_honoured(self, tiny):
        from repro.binary.linker import link_program

        layout = self._full_layout(tiny.binary, switchy=4096)
        binary = link_program(tiny.program, layout, options=tiny.options)
        assert binary.functions["switchy"].addr % 4096 == 0

    def test_multi_fragment_same_section_has_no_cold_section(self, tiny):
        from repro.binary.binaryfile import Fragment, Layout, SectionLayout
        from repro.binary.binaryfile import TEXT_BASE
        from repro.binary.linker import link_program

        fragments = []
        for name, info in tiny.binary.functions.items():
            ids = tuple(int(b.label.split("#")[1]) for b in info.blocks)
            if name == "helper0":
                # split into two fragments, both in the same section — the
                # FunctionInfo must not report a phantom cold section
                fragments.append(Fragment(name, ids[:2]))
                fragments.append(Fragment(name, ids[2:]))
            else:
                fragments.append(Fragment(name, ids))
        layout = Layout(sections=[SectionLayout(name=".text", base=TEXT_BASE,
                                                fragments=fragments)])
        binary = link_program(tiny.program, layout, options=tiny.options)
        info = binary.functions["helper0"]
        assert info.section == ".text"
        assert info.cold_section is None
        assert len(info.blocks) == len(tiny.binary.functions["helper0"].blocks)


class TestFleetLayoutConfig:
    def test_effective_bolt_options_default_passthrough(self):
        from repro.fleet.controller import FleetConfig

        cfg = FleetConfig()
        assert cfg.effective_bolt_options() is cfg.bolt_options

    def test_effective_bolt_options_folds_layout(self):
        from repro.fleet.controller import FleetConfig

        cfg = FleetConfig(layout="stitch", huge_pages=True)
        opts = cfg.effective_bolt_options()
        assert opts.layout == "stitch"
        assert opts.huge_pages is True

    def test_scenario_toml_accepts_layout_keys(self):
        from repro.fleet.scenario import parse_scenario

        scenario = parse_scenario(
            """
            [scenario]
            name = "layout-canary"

            [[tenants]]
            name = "edge"
            workload = "memcached"
            layout = "stitch"
            huge_pages = true
            """
        )
        cfg = scenario.tenant("edge").config
        assert cfg.layout == "stitch"
        assert cfg.huge_pages is True
