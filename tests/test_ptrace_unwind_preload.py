"""Tests for the ptrace controller, stack unwinding and the preload agent."""

import pytest

from repro.errors import PtraceError, ReplacementError
from repro.vm.preload import PreloadAgent
from repro.vm.ptrace import PtraceController, Registers
from repro.vm.unwind import (
    AddressIndex,
    live_code_pointers,
    stack_live_functions,
    stack_return_addresses,
)


class TestPtrace:
    def test_pause_resume_cycle(self, tiny):
        proc = tiny.process()
        pt = PtraceController(proc)
        assert not pt.stopped
        pt.pause()
        assert pt.stopped and proc.paused
        pt.resume()
        assert not proc.paused

    def test_double_pause_rejected(self, tiny):
        proc = tiny.process()
        pt = PtraceController(proc)
        pt.pause()
        with pytest.raises(PtraceError):
            pt.pause()

    def test_resume_without_pause_rejected(self, tiny):
        pt = PtraceController(tiny.process())
        with pytest.raises(PtraceError):
            pt.resume()

    def test_memory_access_requires_stop(self, tiny):
        pt = PtraceController(tiny.process())
        with pytest.raises(PtraceError):
            pt.read_memory(0x40_0000, 4)
        with pytest.raises(PtraceError):
            pt.write_u64(0x40_0000, 0)

    def test_regs_roundtrip(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=5)
        pt = PtraceController(proc)
        pt.pause()
        regs = pt.get_regs(0)
        assert regs.pc == proc.threads[0].pc
        pt.set_regs(0, Registers(pc=regs.pc, sp=regs.sp - 8))
        assert proc.threads[0].sp == regs.sp - 8
        pt.set_regs(0, regs)
        pt.resume()

    def test_traffic_accounting(self, tiny):
        proc = tiny.process()
        pt = PtraceController(proc)
        pt.pause()
        pt.read_memory(0x40_0000, 16)
        pt.write_memory(0x40_0000, proc.address_space.read(0x40_0000, 4))
        pt.read_u64(0x40_0000)
        pt.write_u64(0xC00_0000, proc.address_space.read_u64(0xC00_0000))
        assert pt.peek_calls == 2
        assert pt.poke_calls == 2
        assert pt.bytes_read == 24
        assert pt.bytes_written == 12
        pt.resume()


class TestUnwind:
    def test_stack_return_addresses_match_depth(self, tiny):
        proc = tiny.process(n_threads=1)
        proc.run(max_instructions=333)
        thread = proc.threads[0]
        rets = stack_return_addresses(proc, thread)
        assert len(rets) == thread.stack_depth

    def test_live_code_pointers_include_pcs(self, tiny):
        proc = tiny.process(n_threads=2)
        proc.run(max_transactions=10)
        pointers = live_code_pointers(proc)
        kinds = {k for _a, k in pointers}
        assert "pc" in kinds

    def test_address_index_resolves_blocks(self, tiny):
        index = AddressIndex([tiny.binary])
        for name, info in tiny.binary.functions.items():
            for block in info.blocks:
                assert index.resolve(block.addr) == (tiny.binary.name, name)
                assert index.resolve(block.addr + block.size - 1) == (
                    tiny.binary.name,
                    name,
                )

    def test_address_index_rejects_gaps(self, tiny):
        index = AddressIndex([tiny.binary])
        assert index.resolve(0) is None
        assert index.resolve(0xFFFF_FFFF) is None

    def test_stack_live_functions_contains_main(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=20)
        live = stack_live_functions(proc, AddressIndex([tiny.binary]))
        assert "main" in live
        # every live function is a real function name
        assert live <= set(tiny.binary.functions)


class TestPreload:
    def test_agent_registered_once(self, tiny):
        proc = tiny.process(with_agent=False)
        agent = PreloadAgent(proc)
        assert PreloadAgent.of(proc) is agent
        with pytest.raises(ReplacementError):
            PreloadAgent(proc)

    def test_missing_agent_raises(self, tiny):
        proc = tiny.process(with_agent=False)
        with pytest.raises(ReplacementError):
            PreloadAgent.of(proc)

    def test_map_and_copy(self, tiny):
        proc = tiny.process()
        agent = PreloadAgent.of(proc)
        agent.map_region(0x0200_0000, 64, name="test")
        agent.copy_into(0x0200_0000, b"\x01\x02\x03")
        assert proc.address_space.read(0x0200_0000, 3) == b"\x01\x02\x03"
        assert agent.bytes_copied == 3
        assert agent.regions_mapped == 1
        assert agent.copy_calls == 1
