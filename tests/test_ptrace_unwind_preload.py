"""Tests for the ptrace controller, stack unwinding and the preload agent."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PtraceError, ReplacementError
from repro.vm.preload import PreloadAgent
from repro.vm.ptrace import PtraceController, Registers
from repro.vm.unwind import (
    AddressIndex,
    live_code_pointers,
    live_code_slots,
    stack_live_functions,
    stack_return_addresses,
)


class TestPtrace:
    def test_pause_resume_cycle(self, tiny):
        proc = tiny.process()
        pt = PtraceController(proc)
        assert not pt.stopped
        pt.pause()
        assert pt.stopped and proc.paused
        pt.resume()
        assert not proc.paused

    def test_double_pause_rejected(self, tiny):
        proc = tiny.process()
        pt = PtraceController(proc)
        pt.pause()
        with pytest.raises(PtraceError):
            pt.pause()

    def test_resume_without_pause_rejected(self, tiny):
        pt = PtraceController(tiny.process())
        with pytest.raises(PtraceError):
            pt.resume()

    def test_memory_access_requires_stop(self, tiny):
        pt = PtraceController(tiny.process())
        with pytest.raises(PtraceError):
            pt.read_memory(0x40_0000, 4)
        with pytest.raises(PtraceError):
            pt.write_u64(0x40_0000, 0)

    def test_regs_roundtrip(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=5)
        pt = PtraceController(proc)
        pt.pause()
        regs = pt.get_regs(0)
        assert regs.pc == proc.threads[0].pc
        pt.set_regs(0, Registers(pc=regs.pc, sp=regs.sp - 8))
        assert proc.threads[0].sp == regs.sp - 8
        pt.set_regs(0, regs)
        pt.resume()

    def test_traffic_accounting(self, tiny):
        proc = tiny.process()
        pt = PtraceController(proc)
        pt.pause()
        pt.read_memory(0x40_0000, 16)
        pt.write_memory(0x40_0000, proc.address_space.read(0x40_0000, 4))
        pt.read_u64(0x40_0000)
        pt.write_u64(0xC00_0000, proc.address_space.read_u64(0xC00_0000))
        assert pt.peek_calls == 2
        assert pt.poke_calls == 2
        assert pt.bytes_read == 24
        assert pt.bytes_written == 12
        pt.resume()


class TestUnwind:
    def test_stack_return_addresses_match_depth(self, tiny):
        proc = tiny.process(n_threads=1)
        proc.run(max_instructions=333)
        thread = proc.threads[0]
        rets = stack_return_addresses(proc, thread)
        assert len(rets) == thread.stack_depth

    def test_live_code_pointers_include_pcs(self, tiny):
        proc = tiny.process(n_threads=2)
        proc.run(max_transactions=10)
        pointers = live_code_pointers(proc)
        kinds = {k for _a, k in pointers}
        assert "pc" in kinds

    def test_address_index_resolves_blocks(self, tiny):
        index = AddressIndex([tiny.binary])
        for name, info in tiny.binary.functions.items():
            for block in info.blocks:
                assert index.resolve(block.addr) == (tiny.binary.name, name)
                assert index.resolve(block.addr + block.size - 1) == (
                    tiny.binary.name,
                    name,
                )

    def test_address_index_rejects_gaps(self, tiny):
        index = AddressIndex([tiny.binary])
        assert index.resolve(0) is None
        assert index.resolve(0xFFFF_FFFF) is None

    def test_stack_live_functions_contains_main(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=20)
        live = stack_live_functions(proc, AddressIndex([tiny.binary]))
        assert "main" in live
        # every live function is a real function name
        assert live <= set(tiny.binary.functions)


class TestPreload:
    def test_agent_registered_once(self, tiny):
        proc = tiny.process(with_agent=False)
        agent = PreloadAgent(proc)
        assert PreloadAgent.of(proc) is agent
        with pytest.raises(ReplacementError):
            PreloadAgent(proc)

    def test_missing_agent_raises(self, tiny):
        proc = tiny.process(with_agent=False)
        with pytest.raises(ReplacementError):
            PreloadAgent.of(proc)

    def test_map_and_copy(self, tiny):
        proc = tiny.process()
        agent = PreloadAgent.of(proc)
        agent.map_region(0x0200_0000, 64, name="test")
        agent.copy_into(0x0200_0000, b"\x01\x02\x03")
        assert proc.address_space.read(0x0200_0000, 3) == b"\x01\x02\x03"
        assert agent.bytes_copied == 3
        assert agent.regions_mapped == 1
        assert agent.copy_calls == 1


class TestUnwindEdgeCases:
    """Edge cases the OSR transfer primitive leans on ``unwind`` for."""

    def test_pc_at_function_entry_and_exit_boundaries(self, tiny):
        proc = tiny.process(n_threads=1)
        proc.run(max_transactions=3)
        thread = proc.threads[0]
        index = AddressIndex([tiny.binary])
        info = tiny.binary.functions["helper0"]
        first, last = info.blocks[0], info.blocks[-1]
        saved_pc = thread.pc
        try:
            # Entry boundary: the function's very first byte resolves to it
            # and surfaces as a register-held (location 0) slot.
            thread.pc = first.addr
            assert index.resolve(thread.pc) == (tiny.binary.name, "helper0")
            (pc_slot,) = [s for s in live_code_slots(proc) if s.kind == "pc"]
            assert pc_slot.value == first.addr
            assert pc_slot.location == 0 and pc_slot.index == -1
            # Exit boundary: the last byte still belongs to the function;
            # one past the end does not.
            thread.pc = last.addr + last.size - 1
            assert index.resolve(thread.pc) == (tiny.binary.name, "helper0")
            past = index.resolve(last.addr + last.size)
            assert past is None or past[1] != "helper0"
        finally:
            thread.pc = saved_pc

    @given(
        pushed=st.lists(
            st.integers(min_value=0x40_0000, max_value=0x50_0000),
            min_size=1, max_size=24,
        ),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_longjmp_truncated_stack_unwinds_consistently(
        self, tiny, pushed, data
    ):
        proc = tiny.process(n_threads=1, with_agent=False)
        thread = proc.threads[0]
        for value in pushed:
            thread.sp -= 8
            proc.address_space.write_u64(thread.sp, value)
        # Innermost-first: the most recently pushed address leads.
        assert stack_return_addresses(proc, thread) == list(reversed(pushed))
        # longjmp restores an older sp, truncating the stack mid-crawl
        # depth; only the outermost `keep` frames must remain, and the
        # crawl must never read below the restored sp.
        keep = data.draw(st.integers(min_value=0, max_value=len(pushed)))
        thread.sp = thread.stack_base - keep * 8
        rets = stack_return_addresses(proc, thread)
        assert rets == list(reversed(pushed[:keep]))
        assert thread.stack_depth == keep
        slots = [s for s in live_code_slots(proc) if s.kind == "retaddr"]
        assert [s.value for s in slots] == rets
        assert [s.location for s in slots] == [
            thread.sp + 8 * i for i in range(keep)
        ]

    @given(
        frames=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=3),     # generation band
                st.integers(min_value=0, max_value=4096),  # offset in band
            ),
            min_size=1, max_size=12,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_retaddrs_in_carry_bands_surface_as_writable_slots(
        self, tiny, frames
    ):
        from repro.binary.binaryfile import BOLT_GEN_STRIDE, BOLT_TEXT_BASE

        proc = tiny.process(n_threads=1, with_agent=False)
        thread = proc.threads[0]
        addrs = [
            BOLT_TEXT_BASE + (band - 1) * BOLT_GEN_STRIDE + off
            for band, off in frames
        ]
        for addr in addrs:
            thread.sp -= 8
            proc.address_space.write_u64(thread.sp, addr)
        slots = [s for s in live_code_slots(proc) if s.kind == "retaddr"]
        assert [s.value for s in slots] == list(reversed(addrs))
        # Each slot's location is writable: rewriting through it (what the
        # OSR transfer does) is visible to the next crawl.
        target = slots[0]
        proc.address_space.write_u64(target.location, 0x40_0123)
        again = [s for s in live_code_slots(proc) if s.kind == "retaddr"]
        assert again[0].value == 0x40_0123
        assert [s.value for s in again[1:]] == [s.value for s in slots[1:]]
