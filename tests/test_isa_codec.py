"""Round-trip and byte-level tests for the assembler and disassembler."""

import pytest

from repro.errors import DecodingError, EncodingError
from repro.isa.assembler import Assembler, encode_instruction, patch_rel32
from repro.isa.disassembler import decode_instruction, disassemble_range
from repro.isa.instructions import (
    INSTRUCTION_SIZES,
    Instruction,
    Opcode,
    alu,
    br_cond,
    call,
    halt,
    icall,
    jmp,
    jtab,
    load,
    mkfp,
    nop,
    ret,
    store,
    syscall,
    txn_mark,
    vcall,
)


def roundtrip(insn: Instruction, addr: int = 0x1000, resolver=None):
    encoded = encode_instruction(insn, addr, resolver or {})
    assert len(encoded) == insn.size
    reader = lambda a, n: encoded[a - addr : a - addr + n]
    return decode_instruction(reader, addr)


@pytest.mark.parametrize(
    "insn",
    [
        nop(),
        alu(5),
        load(3),
        store(1),
        txn_mark(2),
        ret(),
        halt(),
        syscall(7),
        icall(44),
        vcall(17, 3),
    ],
)
def test_roundtrip_simple(insn):
    decoded = roundtrip(insn)
    assert decoded.op == insn.op
    assert decoded.site == insn.site
    assert decoded.weight == insn.weight
    assert decoded.slot == insn.slot


def test_roundtrip_br_cond_resolves_target():
    decoded = roundtrip(br_cond(12, 0x2000), addr=0x1000)
    assert decoded.op == Opcode.BR_COND
    assert decoded.site == 12
    assert decoded.target == 0x2000
    assert not decoded.invert


def test_roundtrip_br_cond_invert_flag():
    decoded = roundtrip(br_cond(12, 0x800, invert=True), addr=0x1000)
    assert decoded.invert
    assert decoded.site == 12
    assert decoded.target == 0x800  # backwards branch


def test_br_cond_site_limit():
    with pytest.raises(EncodingError):
        encode_instruction(br_cond(0x8000, 0x2000), 0x1000)


def test_roundtrip_call_negative_displacement():
    decoded = roundtrip(call(0x100), addr=0x5000)
    assert decoded.target == 0x100


def test_roundtrip_jmp():
    decoded = roundtrip(jmp(0x123456), addr=0x1000)
    assert decoded.target == 0x123456


def test_roundtrip_jtab_absolute_table():
    decoded = roundtrip(jtab(3, 0x0800_0010), addr=0x1000)
    assert decoded.op == Opcode.JTAB
    assert decoded.target == 0x0800_0010


def test_roundtrip_mkfp():
    decoded = roundtrip(mkfp(0x40_0040, 9, wrapped=True), addr=0x1000)
    assert decoded.target == 0x40_0040
    assert decoded.slot == 9
    assert decoded.wrapped


def test_symbolic_resolution_through_mapping():
    encoded = encode_instruction(call("callee"), 0x1000, {"callee": 0x9000})
    reader = lambda a, n: encoded[a - 0x1000 : a - 0x1000 + n]
    assert decode_instruction(reader, 0x1000).target == 0x9000


def test_unresolved_symbol_raises():
    with pytest.raises(EncodingError):
        encode_instruction(call("missing"), 0x1000, {})


def test_missing_target_raises():
    with pytest.raises(EncodingError):
        encode_instruction(Instruction(Opcode.CALL), 0x1000, {})


def test_rel32_out_of_range():
    with pytest.raises(EncodingError):
        encode_instruction(call(2**33), 0x1000, {})


def test_mkfp_u32_out_of_range():
    with pytest.raises(EncodingError):
        encode_instruction(mkfp(2**32, 0), 0x1000, {})


def test_decode_invalid_opcode():
    data = bytes([0xEE])
    with pytest.raises(DecodingError):
        decode_instruction(lambda a, n: data[a : a + n], 0)


def test_patch_rel32_retargets_call():
    code = bytearray(encode_instruction(call(0x2000), 0x1000, {}))
    patch_rel32(code, 0, 0x1000, 0x7000)
    reader = lambda a, n: bytes(code[a - 0x1000 : a - 0x1000 + n])
    assert decode_instruction(reader, 0x1000).target == 0x7000


def test_patch_rel32_preserves_opcode_and_size():
    code = bytearray(encode_instruction(jmp(0x2000), 0x1000, {}))
    before = code[0]
    patch_rel32(code, 0, 0x1000, 0x3000)
    assert code[0] == before
    assert len(code) == INSTRUCTION_SIZES[Opcode.JMP]


def test_patch_rel32_rejects_non_branch():
    code = bytearray(encode_instruction(alu(), 0x1000, {}))
    with pytest.raises(EncodingError):
        patch_rel32(code, 0, 0x1000, 0x3000)


def test_assembler_sequential_layout():
    asm = Assembler(base=0x2000)
    a1 = asm.emit(alu())
    a2 = asm.emit(load(1))
    a3 = asm.emit(ret())
    assert (a1, a2) == (0x2000, 0x2004)
    assert a3 == 0x2008
    image = asm.finish({})
    assert len(image) == 9


def test_assembler_emit_all_and_cursor():
    asm = Assembler(base=0)
    asm.emit_all([alu(), alu(), ret()])
    assert asm.cursor == 9


def test_assembler_resolves_forward_reference():
    asm = Assembler(base=0x100)
    asm.emit(jmp("end"))
    end = asm.emit(ret())
    image = asm.finish({"end": end})
    reader = lambda a, n: image[a - 0x100 : a - 0x100 + n]
    assert decode_instruction(reader, 0x100).target == end


def test_disassemble_range_linear():
    asm = Assembler(base=0x100)
    asm.emit_all([alu(), load(2), br_cond(3, 0x100), ret()])
    image = asm.finish({})
    reader = lambda a, n: image[a - 0x100 : a - 0x100 + n]
    decoded = disassemble_range(reader, 0x100, 0x100 + len(image))
    assert [i.op for _a, i in decoded] == [
        Opcode.ALU,
        Opcode.LOAD,
        Opcode.BR_COND,
        Opcode.RET,
    ]
    assert decoded[2][1].target == 0x100


def test_disassemble_range_rejects_crossing_end():
    image = encode_instruction(call(0x500), 0x100, {})
    reader = lambda a, n: image[a - 0x100 : a - 0x100 + n]
    with pytest.raises(DecodingError):
        disassemble_range(reader, 0x100, 0x102)


def test_nop_padding_decodes():
    image = bytes(4) + encode_instruction(ret(), 0x104, {})
    reader = lambda a, n: image[a - 0x100 : a - 0x100 + n]
    decoded = disassemble_range(reader, 0x100, 0x105)
    assert [i.op for _a, i in decoded] == [Opcode.NOP] * 4 + [Opcode.RET]
