"""Tests for the §IV-D load-balancer rollout simulation."""

import pytest

from repro.harness.cluster import RolloutResult, simulate_rollout

RATES = dict(
    tps_original=4000.0,
    tps_profiling=3500.0,
    tps_contention=3200.0,
    tps_optimized=5600.0,
    pause_seconds=0.6,
    profile_seconds=3.0,
    background_seconds=4.0,
)


class TestRollout:
    def test_drain_policy_caps_tail_latency(self):
        unaware = simulate_rollout(**RATES, n_nodes=4, drain=False)
        drained = simulate_rollout(**RATES, n_nodes=4, drain=True)
        assert drained.worst_p99_ms < unaware.worst_p99_ms / 3

    def test_unaware_pause_causes_spike(self):
        unaware = simulate_rollout(**RATES, n_nodes=4, drain=False)
        # a 600 ms stall shows up as a multi-hundred-ms p99 spike
        assert unaware.worst_p99_ms > 100.0
        assert unaware.baseline_p99_ms < 10.0

    def test_rollout_improves_steady_state(self):
        for drain in (False, True):
            result = simulate_rollout(**RATES, n_nodes=4, drain=drain)
            assert result.steady_p99_ms < result.baseline_p99_ms

    def test_all_nodes_optimized(self):
        result = simulate_rollout(**RATES, n_nodes=3, drain=True)
        assert result.steps[-1].nodes_optimized == 3

    def test_backlog_drains_eventually(self):
        result = simulate_rollout(**RATES, n_nodes=4, drain=False, settle_seconds=20)
        assert result.steps[-1].worst_node_backlog == 0.0

    def test_drain_needs_headroom(self):
        """At very high utilization, draining a node overloads the others —
        the mitigation assumes spare capacity, as real deployments do."""
        tight = simulate_rollout(**RATES, n_nodes=2, utilization=0.95, drain=True)
        comfy = simulate_rollout(**RATES, n_nodes=4, utilization=0.5, drain=True)
        assert tight.worst_p99_ms > comfy.worst_p99_ms

    def test_policy_labels(self):
        assert simulate_rollout(**RATES, drain=True).policy == "drain"
        assert simulate_rollout(**RATES, drain=False).policy == "unaware"
