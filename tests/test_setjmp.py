"""Tests for setjmp/longjmp: ISA semantics, thread-locality, interaction with
code replacement (paper §III-B lists saved continuations among the pointer
hazards; §IV-A notes C_0 preservation handles them for free; continuous
optimization must rewrite them like return addresses)."""

import pytest

from repro.binary.linker import link_program
from repro.compiler.codegen import CompilerOptions
from repro.compiler.ir import CondBr, IRFunction, Jump, Program, Ret, SiteKind
from repro.errors import ExecutionError
from repro.isa.instructions import alu, call, longjmp, setjmp, txn_mark
from repro.vm.process import Process
from repro.workloads.inputs import InputSpec


def jmpbuf_program(error_p=0.3):
    """main loops: setjmp; call worker; worker may longjmp back."""
    prog = Program(name="sj", entry="main", jmpbuf_count=2)
    worker = IRFunction("worker")
    w0 = worker.new_block()
    w_err = worker.new_block()
    w_ok = worker.new_block()
    site = prog.sites.allocate(SiteKind.BRANCH, "worker")
    w0.body = [alu(), alu()]
    w0.terminator = CondBr(site=site, taken=1, fallthrough=2)
    w_err.body = [alu(), longjmp(0)]
    w_err.terminator = Ret()  # unreachable
    w_ok.body = [alu()]
    w_ok.terminator = Ret()
    prog.add_function(worker)

    main = IRFunction("main")
    m0 = main.new_block()
    m0.body = [setjmp(0), alu(), call("worker"), txn_mark()]
    m0.terminator = Jump(0)
    prog.add_function(main)
    return prog, site


class TestSetjmpSemantics:
    def test_longjmp_unwinds_to_saved_frame(self):
        prog, site = jmpbuf_program()
        binary = link_program(prog, options=CompilerOptions(jump_tables=False))
        spec = InputSpec(name="t", branch_bias={site: 0.3})
        proc = Process(binary, prog, spec, n_threads=1, seed=2)
        delta = proc.run(max_instructions=50_000)
        # the program survives frequent longjmps and keeps transacting
        assert delta.transactions > 0
        thread = proc.threads[0]
        assert thread.stack_depth <= 1  # frames are unwound, not leaked

    def test_longjmp_counts_as_taken_transfer(self):
        prog, site = jmpbuf_program()
        binary = link_program(prog, options=CompilerOptions(jump_tables=False))
        spec = InputSpec(name="t", branch_bias={site: 1.0})  # always error
        proc = Process(binary, prog, spec, n_threads=1, seed=2)
        delta = proc.run(max_instructions=5_000)
        assert delta.taken_branches > 0
        assert delta.transactions == 0  # txn_mark after the call is re-run...
        # actually txn_mark precedes the jump back; the longjmp path skips it

    def test_longjmp_without_setjmp_faults(self):
        prog = Program(name="sj2", entry="main", jmpbuf_count=1)
        main = IRFunction("main")
        m0 = main.new_block()
        m0.body = [alu(), longjmp(0)]
        m0.terminator = Ret()
        prog.add_function(main)
        binary = link_program(prog, options=CompilerOptions(jump_tables=False))
        proc = Process(binary, prog, InputSpec(name="t"), n_threads=1, seed=1)
        with pytest.raises(ExecutionError):
            proc.run(max_instructions=100)

    def test_jmpbufs_are_thread_local(self):
        prog, site = jmpbuf_program()
        binary = link_program(prog, options=CompilerOptions(jump_tables=False))
        spec = InputSpec(name="t", branch_bias={site: 0.3})
        proc = Process(binary, prog, spec, n_threads=2, seed=2)
        proc.run(max_transactions=50)
        a = proc.address_space.read_u64(binary.jmpbuf_addr(0, 0) + 8)
        b = proc.address_space.read_u64(binary.jmpbuf_addr(0, 1) + 8)
        # each thread saved its own stack pointer
        assert a != b

    def test_buf_indices_validated(self):
        prog, _site = jmpbuf_program()
        binary = link_program(prog, options=CompilerOptions(jump_tables=False))
        with pytest.raises(IndexError):
            binary.jmpbuf_addr(5, 0)
        with pytest.raises(IndexError):
            binary.jmpbuf_addr(0, 99)


class TestSetjmpAcrossReplacement:
    def _replaced_process(self):
        import sys

        sys.path.insert(0, "tests")
        from conftest import small_server_params

        from repro.core.orchestrator import Ocolos, OcolosConfig
        from repro.workloads.generator import build_workload

        wl = build_workload(small_server_params(n_jmpbufs=2, seed=123))
        binary = link_program(wl.program, options=wl.options)
        spec = wl.make_input("mix", 0.4, {"read_op": 2.0, "write_op": 1.0})
        from repro.vm.preload import PreloadAgent

        proc = Process(binary, wl.program, spec, n_threads=2, seed=5)
        PreloadAgent(proc)
        proc.run(max_transactions=300)
        ocolos = Ocolos(
            proc,
            binary,
            compiler_options=wl.options,
            config=OcolosConfig(
                profile_seconds=0.03, perf_period=500, background_sim_cap_seconds=0.05
            ),
        )
        return wl, binary, proc, ocolos

    def test_saved_continuations_survive_first_replacement(self):
        _wl, _binary, proc, ocolos = self._replaced_process()
        ocolos.optimize_once()
        before = proc.counters_total().transactions
        proc.run(max_transactions=800)
        assert proc.counters_total().transactions >= before + 800

    def test_continuations_survive_continuous_replacement(self):
        """After gen-2 replacement, any jmpbuf continuation saved in gen-1
        code must have been rewritten to a carry copy (not dangle)."""
        from repro.core.continuous import generation_band

        wl, binary, proc, ocolos = self._replaced_process()
        ocolos.optimize_once()
        proc.run(max_transactions=500)  # handlers in C_1 save jmpbufs
        ocolos.optimize_once()  # continuous: C_1 retired
        lo, hi = generation_band(1)
        for tid in range(len(proc.threads)):
            for buf in range(binary.jmpbuf_count):
                pc = proc.address_space.read_u64(binary.jmpbuf_addr(buf, tid))
                assert not (lo <= pc < hi)
        before = proc.counters_total().transactions
        proc.run(max_transactions=800)
        assert proc.counters_total().transactions >= before + 800
