"""Tests for the input model and the synthetic workload generator."""

import math

import pytest

from repro.compiler.ir import SiteKind
from repro.errors import WorkloadError
from repro.workloads.generator import build_workload
from repro.workloads.inputs import CompiledInput, InputSpec, merge_input_specs
from tests.conftest import small_server_params


class TestCompiledInput:
    def test_branch_bias_resolved(self, small_server):
        spec = small_server.make_input("x", 0.3, {"read_op": 1.0})
        compiled = CompiledInput(small_server.program, spec)
        for site, meta in small_server.branch_sites.items():
            assert compiled.branch_p[site] == pytest.approx(
                meta.taken_probability(0.3)
            )

    def test_missing_vcall_mix_rejected(self, small_server):
        spec = small_server.make_input("x", 0.3, {"read_op": 1.0})
        spec.vcall_mix = {}
        with pytest.raises(WorkloadError):
            CompiledInput(small_server.program, spec)

    def test_sampler_respects_distribution(self, small_server):
        spec = small_server.make_input("x", 0.3, {"read_op": 1.0})
        compiled = CompiledInput(small_server.program, spec)
        site = small_server.dispatch_site
        # read-only mix: every dispatch goes to the read handler's class
        for r in (0.0, 0.3, 0.7, 0.999):
            assert compiled.sample_vcall(site, r) == small_server.op_class_ids[0]

    def test_derived_switch_probabilities_conditional(self):
        """A switch mix [3,1] lowered to a chain gives the first test
        p=0.75 and (implicitly) the remainder to the last case."""
        from repro.compiler.ir import IRFunction, Program, Ret, Switch
        from repro.compiler.codegen import CompilerOptions, lower_fragment

        prog = Program(name="p", entry="f")
        func = IRFunction("f")
        b0 = func.new_block()
        c1, c2 = func.new_block(), func.new_block()
        c1.terminator = Ret()
        c2.terminator = Ret()
        site = prog.sites.allocate(SiteKind.SWITCH, "f", n_cases=2)
        b0.terminator = Switch(site=site, targets=(1, 2))
        prog.add_function(func)
        lower_fragment(prog, func, (0, 1, 2), CompilerOptions(jump_tables=False))
        spec = InputSpec(name="x", switch_mix={site: [3.0, 1.0]})
        compiled = CompiledInput(prog, spec)
        derived = prog.sites.allocate_derived(site, 0, "f")
        assert compiled.branch_p[derived] == pytest.approx(0.75)

    def test_probability_introspection_sums_to_one(self, small_server):
        spec = small_server.make_input("x", 0.5, {"read_op": 1.0, "write_op": 1.0})
        compiled = CompiledInput(small_server.program, spec)
        for site in small_server.icall_sites:
            total = sum(p for _o, p in compiled.icall_probabilities(site))
            assert total == pytest.approx(1.0)


class TestMergeInputs:
    def test_average_branch_bias(self):
        a = InputSpec(name="a", branch_bias={1: 0.9})
        b = InputSpec(name="b", branch_bias={1: 0.1})
        merged = merge_input_specs("all", [a, b])
        assert merged.branch_bias[1] == pytest.approx(0.5)

    def test_vcall_mix_union(self):
        a = InputSpec(name="a", vcall_mix={1: [(0, 2.0)]})
        b = InputSpec(name="b", vcall_mix={1: [(1, 2.0)]})
        merged = merge_input_specs("all", [a, b])
        assert dict(merged.vcall_mix[1]) == {0: 2.0, 1: 2.0}

    def test_mem_scale_averaged(self):
        a = InputSpec(name="a", mem_scale=(1, 1, 1, 1))
        b = InputSpec(name="b", mem_scale=(1, 1, 1, 3))
        merged = merge_input_specs("all", [a, b])
        assert merged.mem_scale[3] == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            merge_input_specs("all", [])


class TestGenerator:
    def test_structure_counts(self, small_server):
        params = small_server.params
        program = small_server.program
        names = set(program.functions)
        assert sum(1 for n in names if n.startswith("fn")) == params.n_work_functions
        assert sum(1 for n in names if n.startswith("util")) == params.n_utility_functions
        assert sum(1 for n in names if n.startswith("callback")) == params.n_callback_functions
        assert "parse" in names and "main" in names
        for op in params.op_names:
            assert f"handle_{op}" in names

    def test_vtables_cover_ops_and_data_classes(self, small_server):
        params = small_server.params
        assert len(small_server.program.vtables) == params.n_op_types + params.n_data_classes

    def test_program_validates(self, small_server):
        small_server.program.validate()

    def test_deterministic_rebuild(self):
        a = build_workload(small_server_params())
        b = build_workload(small_server_params())
        from repro.binary.linker import link_program

        ba = link_program(a.program, options=a.options)
        bb = link_program(b.program, options=b.options)
        assert ba.sections[".text"].data == bb.sections[".text"].data

    def test_different_seed_differs(self):
        a = build_workload(small_server_params(seed=1))
        b = build_workload(small_server_params(seed=2))
        from repro.binary.linker import link_program

        ba = link_program(a.program, options=a.options)
        bb = link_program(b.program, options=b.options)
        assert ba.sections[".text"].data != bb.sections[".text"].data

    def test_theta_flips_sensitive_sites(self, small_server):
        lo = small_server.make_input("lo", 0.0, {"read_op": 1.0})
        hi = small_server.make_input("hi", 1.0, {"read_op": 1.0})
        flipped = sum(
            1
            for site in small_server.branch_sites
            if (lo.branch_bias[site] - 0.5) * (hi.branch_bias[site] - 0.5) < 0
        )
        assert flipped > len(small_server.branch_sites) * 0.2

    def test_unknown_op_rejected(self, small_server):
        with pytest.raises(WorkloadError):
            small_server.make_input("x", 0.5, {"nonsense": 1.0})

    def test_empty_mix_rejected(self, small_server):
        with pytest.raises(WorkloadError):
            small_server.make_input("x", 0.5, {"read_op": 0.0})

    def test_switch_dispatch_mode(self):
        wl = build_workload(
            small_server_params(
                dispatch_mode="switch",
                n_data_classes=0,
                data_vtable_slots=0,
                vcall_step_fraction=0.0,
            )
        )
        assert wl.dispatch_kind == "switch"
        assert len(wl.program.vtables) == 0
        spec = wl.make_input("x", 0.2, {"read_op": 1.0})
        assert wl.dispatch_site in spec.switch_mix

    def test_single_shot_halts(self):
        wl = build_workload(small_server_params(single_shot=True, work_items=5))
        from repro.binary.linker import link_program
        from repro.vm.process import Process

        binary = link_program(wl.program, options=wl.options)
        spec = wl.make_input("x", 0.3, {"read_op": 1.0})
        proc = Process(binary, wl.program, spec, n_threads=1, seed=4)
        delta = proc.run(max_instructions=10_000_000)
        assert not proc.runnable_threads()
        assert delta.transactions >= 1

    def test_runs_and_transacts(self, small_server, small_inputs):
        from repro.binary.linker import link_program
        from repro.vm.process import Process

        binary = link_program(small_server.program, options=small_server.options)
        proc = Process(binary, small_server.program, small_inputs["readish"],
                       n_threads=2, seed=3)
        delta = proc.run(max_transactions=100)
        assert delta.transactions >= 100
        assert delta.fp_creations >= 0
