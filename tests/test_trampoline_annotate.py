"""Tests for trampoline full redirection (§IV-B) and L1i miss attribution
(the §VI-C perf-annotate case study machinery)."""

import pytest

from repro.binary.binaryfile import bolt_text_base
from repro.bolt.optimizer import run_bolt
from repro.core.replacement import CodeReplacer
from repro.core.trampoline import TrampolineInstaller
from repro.errors import PtraceError
from repro.profiling.annotate import record_l1i_misses
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile
from repro.vm.ptrace import PtraceController


@pytest.fixture()
def bolt_result(tiny_fresh):
    proc = tiny_fresh.process()
    proc.run(max_transactions=50)
    session = PerfSession(period=300, overhead=0.0)
    session.attach(proc)
    proc.run(max_instructions=80_000)
    session.detach()
    profile, _ = extract_profile(session.samples, tiny_fresh.binary)
    return run_bolt(
        tiny_fresh.program, tiny_fresh.binary, profile,
        compiler_options=tiny_fresh.options,
    )


class TestTrampolines:
    def test_requires_stopped_tracee(self, tiny_fresh, bolt_result):
        proc = tiny_fresh.process()
        installer = TrampolineInstaller(PtraceController(proc), tiny_fresh.binary)
        with pytest.raises(PtraceError):
            installer.install(bolt_result.binary)

    def test_install_reports_and_rewrites_entries(self, tiny_fresh, bolt_result):
        proc = tiny_fresh.process()
        proc.run(max_transactions=30)
        pt = PtraceController(proc)
        pt.pause()
        report = TrampolineInstaller(pt, tiny_fresh.binary).install(bolt_result.binary)
        pt.resume()
        assert report.installed > 0
        from repro.isa.instructions import Opcode

        for name in report.functions:
            entry = tiny_fresh.binary.functions[name].addr
            assert proc.address_space.read(entry, 1)[0] == int(Opcode.JMP)

    def test_stale_pointer_invocations_reach_new_code(self, tiny_fresh, bolt_result):
        """With trampolines, even the C_0-pinned function pointers execute
        optimized code: calls land on the C_0 entry jump and bounce to C_1."""
        proc = tiny_fresh.process()
        proc.run(max_transactions=30)
        replacer = CodeReplacer(proc, tiny_fresh.binary, trampolines=True)
        report = replacer.replace(bolt_result)
        assert report.trampolines is not None
        assert report.trampolines.installed > 0
        # process keeps working with entries rewritten
        before = proc.counters_total().transactions
        proc.run(max_transactions=300)
        assert proc.counters_total().transactions >= before + 300
        # execution spends time in the new generation
        gen_base = bolt_text_base(1)
        seen_new = 0
        for _ in range(40):
            proc.run(max_instructions=53)
            seen_new += sum(1 for t in proc.threads if t.pc >= gen_base)
        assert seen_new > 0

    def test_trampolines_survive_continuous_replacement(self, tiny_fresh, bolt_result):
        from repro.bolt.optimizer import BoltOptions
        from repro.core.continuous import ContinuousReplacer, generation_band

        proc = tiny_fresh.process()
        proc.run(max_transactions=30)
        replacer = CodeReplacer(proc, tiny_fresh.binary, trampolines=True)
        replacer.replace(bolt_result)
        proc.run(max_transactions=100)

        session = PerfSession(period=300, overhead=0.0)
        session.attach(proc)
        proc.run(max_instructions=80_000)
        session.detach()
        profile, _ = extract_profile(session.samples, bolt_result.binary)
        result2 = run_bolt(
            tiny_fresh.program,
            bolt_result.binary,
            profile,
            options=BoltOptions(allow_rebolt=True),
            compiler_options=tiny_fresh.options,
            generation=2,
            cold_reference=tiny_fresh.binary,
        )
        cont = ContinuousReplacer(proc, tiny_fresh.binary, replacer.fp_map)
        cont.replace_next(result2, bolt_result.binary)

        # no C_0 entry trampoline may point into the collected band
        lo, hi = generation_band(1)
        from repro.isa.disassembler import decode_instruction

        for info in tiny_fresh.binary.functions.values():
            opbyte = proc.address_space.read(info.addr, 1)[0]
            if opbyte == 0x11:  # JMP
                insn = decode_instruction(proc.address_space.read, info.addr)
                assert not (lo <= insn.target < hi)
        before = proc.counters_total().transactions
        proc.run(max_transactions=300)
        assert proc.counters_total().transactions >= before + 300


class TestMissAttribution:
    def test_report_totals_consistent(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=30)
        before = proc.counters_total().l1i_misses
        report = record_l1i_misses(proc, [tiny.binary], transactions=100)
        after = proc.counters_total().l1i_misses
        assert report.total_misses == after - before
        assert sum(report.by_function.values()) + report.unattributed == report.total_misses

    def test_hook_removed_after_measurement(self, tiny):
        proc = tiny.process()
        record_l1i_misses(proc, [tiny.binary], transactions=30)
        assert all(fe.l1i_miss_hook is None for fe in proc.frontends)

    def test_rank_and_share(self, tiny):
        proc = tiny.process()
        report = record_l1i_misses(proc, [tiny.binary], transactions=150)
        if report.by_function:
            top_name, top_count = report.top_functions(1)[0]
            assert report.rank(top_name) == 1
            assert report.share(top_name) == pytest.approx(
                top_count / report.total_misses
            )
        assert report.rank("nonexistent_function") is None

    def test_cold_start_misses_attributed(self, tiny):
        proc = tiny.process()
        # fresh caches: the first transactions must take attributable misses
        report = record_l1i_misses(proc, [tiny.binary], transactions=50)
        assert report.total_misses > 0
        assert report.by_function
