"""Forensics tests: checkpoints, record/replay bit-identity, the bisector.

The layer under test is ``repro.forensics``: periodic VM snapshots into the
artifact store, suffix replay from a checkpoint verified against the
recorded machine state, GC pinning of everything a manifest references, and
the canary-regression bisector that must name an injected pessimized
function from the event log and checkpoints alone.

Rollouts are deterministic, so every assertion is exact — replay either
reproduces the recorded run bit-for-bit or it is a bug.  The recorded
fixture uses a disk-backed artifact store (reconfigured per dependent test)
so the bisector genuinely works from stored artifacts, not from objects
left over in process memory.
"""

import json
from types import SimpleNamespace

import pytest

from repro.engine.store import DiskBackend
from repro.engine import store as store_mod
from repro.errors import ReproError
from repro.fleet import FaultPlan, FaultSpec, FleetConfig, FleetController
from repro.fleet.controller import hottest_function, inverted_profile
from repro.fleet.events import EVENTS_SCHEMA_VERSION, EventLog
from repro.forensics import (
    ForensicsError,
    collect_gc_pins,
    load_manifest,
    replay_from_checkpoint,
    run_bisect,
)
from repro.profiling.perf import PerfSession
from repro.vm.snapshot import SnapshotError, capture_vm_state, restore_vm_state

FAULT_SITES = [
    "profile.truncate",
    "bolt.crash",
    "patch.mid_replace",
    "replica.die_drain",
    "replica.slow",
]


@pytest.fixture(scope="module")
def fleet_spec(small_server):
    return small_server.make_input("readish", 0.1, {"read_op": 8.0, "scan_op": 1.0})


def run_recorded(workload, spec, *, plan=None, **overrides):
    """A forensics-armed rollout; returns (controller, outcome, manifest)."""
    overrides.setdefault("n_replicas", 3)
    overrides.setdefault("checkpoint_every", 2)
    config = FleetConfig(drain=True, **overrides)
    controller = FleetController(workload, spec, config, plan)
    outcome = controller.run()
    return controller, outcome, controller._forensics.manifest


def process_state(p):
    """Full machine state of a process, as an equality-comparable value."""
    return (
        p.counters_total().transactions,
        tuple(repr(fe.counters) for fe in p.frontends),
        tuple((t.tid, t.pc, t.sp, t.state.name) for t in p.threads),
        p.rng.getstate(),
        p._quantum_counter,
        tuple(tuple(ring) for ring in p.lbr_rings),
    )


# ---------------------------------------------------------------------------
# VM snapshot layer
# ---------------------------------------------------------------------------


class TestVMSnapshot:
    def test_restore_resumes_bit_identical(self, tiny):
        """capture -> run -> (elsewhere) restore -> run reaches the same state."""
        p = tiny.process(n_threads=2, seed=11)
        p.run(max_transactions=40)
        state = capture_vm_state(p)
        p.run(max_transactions=25)
        reference = process_state(p)

        q = tiny.process(n_threads=2, seed=11)
        q.run(max_transactions=7)  # desynchronize before restoring
        restore_vm_state(q, state)
        q.run(max_transactions=25)
        assert process_state(q) == reference

    def test_snapshot_roundtrips_through_pickle_bytes(self, tiny):
        p = tiny.process(n_threads=2, seed=11)
        p.run(max_transactions=30)
        state = capture_vm_state(p)
        assert state.size_bytes() > 0
        q = tiny.process(n_threads=2, seed=11)
        restore_vm_state(q, state)
        assert process_state(q) == process_state(p)

    def test_capture_refuses_perf_attached(self, tiny):
        p = tiny.process(n_threads=2, seed=11)
        p.run(max_transactions=10)
        session = PerfSession(period=500, overhead=0.1)
        session.attach(p)
        try:
            with pytest.raises(SnapshotError):
                capture_vm_state(p)
        finally:
            session.detach()
        capture_vm_state(p)  # detached again: capturable


# ---------------------------------------------------------------------------
# recorded rollout (disk-backed, shared by the replay/bisect tests)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def recorded(small_server, fleet_spec, tmp_path_factory):
    """A rolled-back targeted-pessimization rollout, recorded to disk.

    The gate thresholds are strict (an SLO-tight fleet): the single
    pessimized function costs only a few percent, which a default gate
    would wave through but this one rolls back — producing the canary
    verdict the bisector keys on.
    """
    cache_dir = str(tmp_path_factory.mktemp("forensics-store"))
    store_mod.configure(cache_dir=cache_dir)
    controller, outcome, manifest = run_recorded(
        small_server,
        fleet_spec,
        pessimize_layout=True,
        pessimize_function="hottest",
        proceed_above=1.10,
        rollback_below=1.05,
    )
    yield SimpleNamespace(
        controller=controller,
        outcome=outcome,
        manifest=manifest,
        cache_dir=cache_dir,
        workload=small_server,
        spec=fleet_spec,
        use=lambda: store_mod.configure(cache_dir=cache_dir),
    )
    store_mod.reset()


class TestRecordedRollout:
    def test_injection_rolled_back_and_was_recorded(self, recorded):
        assert recorded.outcome.status == "rolled_back"
        assert recorded.outcome.events.count("canary.verdict") >= 1
        m = recorded.manifest
        assert m.pessimized_function  # resolved from "hottest"
        assert m.checkpoints, "no checkpoints recorded"
        assert any(mu.kind == "install" for mu in m.mutations)
        assert any(mu.kind == "rollback" for mu in m.mutations)
        # every checkpoint is content-addressed and loadable
        recorded.use()
        ck = m.checkpoints_for(0)[0]
        payload = store_mod.store().get(ck.key())
        assert payload.tick == ck.tick and payload.node == 0

    def test_recording_does_not_perturb_the_fleet(
        self, small_server, fleet_spec, fresh_engine
    ):
        """checkpoint_every on/off twins are machine-identical (no observer
        effect) and emit the same control-plane events.  The recording run
        additionally ledgers ``forensics.checkpoint`` events — those are the
        only difference."""
        c_off, o_off, = (lambda c: (c, c.run()))(
            FleetController(
                small_server, fleet_spec,
                FleetConfig(n_replicas=2, drain=True), None,
            )
        )
        c_on, o_on, m_on = run_recorded(
            small_server, fleet_spec, n_replicas=2, checkpoint_every=2
        )
        assert c_on._forensics is not None and m_on is not None
        control_plane = [
            e.to_jsonable() for e in o_on.events.events
            if not e.kind.startswith("forensics.")
        ]
        assert control_plane == [e.to_jsonable() for e in o_off.events.events]
        assert o_on.events.count("forensics.checkpoint") > 0
        assert [r.machine_digest() for r in c_on.replicas] == [
            r.machine_digest() for r in c_off.replicas
        ]

    def test_forensics_off_by_default(self, small_server, fleet_spec):
        config = FleetConfig(n_replicas=2, drain=True)
        controller = FleetController(small_server, fleet_spec, config, None)
        assert controller._forensics is None


# ---------------------------------------------------------------------------
# replay from checkpoint
# ---------------------------------------------------------------------------


class TestReplayFromCheckpoint:
    def test_replay_matches_recorded_run(self, recorded):
        """Earliest-checkpoint replay of the canary reproduces the recorded
        machine state bit-for-bit, through install, serving on the bad
        layout, and rollback."""
        recorded.use()
        m = recorded.manifest
        res = replay_from_checkpoint(m, recorded.workload, recorded.spec, node=0)
        assert res.verified
        assert res.machine_sha == m.final_machine_sha[0]
        assert res.checks > 0, "no intermediate checkpoints were verified"
        assert res.quanta > 0

    def test_replay_from_mid_run_checkpoint(self, recorded):
        recorded.use()
        m = recorded.manifest
        cks = m.checkpoints_for(0)
        assert len(cks) >= 3
        mid = cks[len(cks) // 2]
        res = replay_from_checkpoint(
            m, recorded.workload, recorded.spec, node=0, checkpoint=mid
        )
        assert res.verified
        assert res.from_tick == mid.tick
        assert res.machine_sha == m.final_machine_sha[0]

    def test_all_healthy_nodes_replay_verified(self, recorded):
        recorded.use()
        m = recorded.manifest
        assert set(m.final_machine_sha) == {0, 1, 2}
        for node in sorted(m.final_machine_sha):
            res = replay_from_checkpoint(
                m, recorded.workload, recorded.spec, node=node
            )
            assert res.verified, f"node {node} replay diverged"

    def test_load_manifest_unknown_run_raises(self, fresh_engine):
        with pytest.raises(ForensicsError, match="checkpoint-every"):
            load_manifest("deadbeef" * 8)


class TestFaultSiteDeterminism:
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_replay_digest_and_checkpoints_identical(
        self, site, small_server, fleet_spec, fresh_engine
    ):
        """For every fault site: twin rollouts emit identical event logs,
        and suffix replay from a checkpoint is bit-identical to the
        recorded (faulted) run."""
        _, o1, m1 = run_recorded(
            small_server, fleet_spec, plan=FaultPlan([FaultSpec(site)])
        )
        _, o2, _ = run_recorded(
            small_server, fleet_spec, plan=FaultPlan([FaultSpec(site)])
        )
        assert o1.events.replay_digest() == o2.events.replay_digest()
        assert o1.events.count("fault.injected") >= 1

        assert m1.final_machine_sha, "no healthy replica recorded a final sha"
        node = sorted(m1.final_machine_sha)[0]
        res = replay_from_checkpoint(m1, small_server, fleet_spec, node=node)
        assert res.verified, f"{site}: replay diverged from recorded run"
        assert res.machine_sha == m1.final_machine_sha[node]


# ---------------------------------------------------------------------------
# event log JSONL
# ---------------------------------------------------------------------------


class TestEventsJsonl:
    def test_roundtrip_preserves_replay_digest(self, recorded, tmp_path):
        path = str(tmp_path / "events.jsonl")
        events = recorded.outcome.events
        events.write_jsonl(
            path, run_id=recorded.manifest.run_id, workload="small_server"
        )
        loaded, header = EventLog.load_jsonl(path)
        assert header["v"] == EVENTS_SCHEMA_VERSION
        assert header["seed"] == events.seed
        assert header["run_id"] == recorded.manifest.run_id
        assert header["workload"] == "small_server"
        assert loaded.replay_digest() == events.replay_digest()
        assert loaded.kinds() == events.kinds()

    def test_header_is_first_line_and_versioned(self, tmp_path):
        log = EventLog(seed=7)
        log.emit(0, "rollout.start", replicas=2)
        path = str(tmp_path / "e.jsonl")
        log.write_jsonl(path)
        first = json.loads(open(path, encoding="utf-8").readline())
        assert first["kind"] == "fleet.events.header"
        assert first["v"] == EVENTS_SCHEMA_VERSION and first["seed"] == 7

    def test_load_rejects_headerless_and_newer_files(self, tmp_path):
        bare = tmp_path / "bare.jsonl"
        bare.write_text('{"tick": 0, "kind": "rollout.start"}\n')
        with pytest.raises(ReproError, match="header"):
            EventLog.load_jsonl(str(bare))
        future = tmp_path / "future.jsonl"
        future.write_text(
            '{"v": 99, "kind": "fleet.events.header", "seed": 1}\n'
        )
        with pytest.raises(ReproError, match="newer"):
            EventLog.load_jsonl(str(future))


# ---------------------------------------------------------------------------
# GC pinning
# ---------------------------------------------------------------------------


class TestGcPinning:
    def test_lru_eviction_skips_pinned_entries(self, tmp_path):
        disk = DiskBackend(str(tmp_path / "cache"))
        keys = []
        for i in range(4):
            key = store_mod.ArtifactKey("blob", f"{i:064x}")
            disk.put(key, b"x" * 1000)
            keys.append(key)
        # refresh atimes in order: keys[0] is the LRU victim-to-be
        for key in keys:
            disk.get(key)
        pinned = {(keys[0].kind, keys[0].digest)}
        evicted = disk.gc(1, pinned=pinned)
        evicted_digests = {d for _, d, _ in evicted}
        assert keys[0].digest not in evicted_digests
        assert disk.contains(keys[0])
        assert {k.digest for k in keys[1:]} == evicted_digests

    def test_manifest_pins_survive_gc_and_still_replay(self, recorded):
        """`repro engine gc` with a zero cap must keep every artifact a
        live forensics manifest references — and a bisect-grade replay
        must still work afterwards."""
        recorded.use()
        disk = store_mod.store().disk
        pins = collect_gc_pins(disk)
        m = recorded.manifest
        assert all(
            (ck.key().kind, ck.key().digest) in pins for ck in m.checkpoints
        )
        assert any(kind == "bolt" for kind, _ in pins)

        disk.gc(0, pinned=pins)
        survivors = {(kind, digest) for kind, digest, _ in disk.entries()}
        assert survivors == pins

        recorded.use()  # drop the in-memory layer: force disk loads
        again = load_manifest(m.run_id)
        res = replay_from_checkpoint(again, recorded.workload, recorded.spec, node=0)
        assert res.verified


# ---------------------------------------------------------------------------
# the bisector
# ---------------------------------------------------------------------------


class TestBisect:
    def test_names_the_injected_function(self, recorded):
        """From the event log and stored checkpoints alone, the bisector
        pins the canary regression on the injected pessimized function."""
        recorded.use()
        m = recorded.manifest
        report = run_bisect(
            m, recorded.workload, recorded.spec, events=recorded.outcome.events
        )
        assert report.culprit_function == m.pessimized_function
        assert report.expected_function == m.pessimized_function
        assert report.first_diverging_tick >= report.install_tick
        assert report.first_diverging_quantum >= 0
        assert report.superblock_function
        assert report.excess_cycles > 0
        assert report.bisect_steps > 0 and report.replay_quanta > 0

        text = report.to_text()
        assert m.pessimized_function in text
        assert "matched" in text and "NOT matched" not in text
        jsonable = report.to_jsonable()
        assert jsonable["culprit_function"] == m.pessimized_function
        json.dumps(jsonable)  # structured output is JSON-clean

    def test_emits_forensics_spans_and_metrics(self, recorded):
        from repro.obs import metrics as metrics_mod
        from repro.obs import trace as trace_mod

        recorded.use()
        tracer = trace_mod.install()
        registry = metrics_mod.install()
        try:
            run_bisect(
                recorded.manifest,
                recorded.workload,
                recorded.spec,
                events=recorded.outcome.events,
            )
            replay_from_checkpoint(
                recorded.manifest, recorded.workload, recorded.spec, node=0
            )
            names = {s.name for s in tracer.finished}
            assert {
                "forensics.bisect",
                "forensics.bisect.search",
                "forensics.bisect.narrow",
                "forensics.replay",
            } <= names
            chrome = tracer.to_chrome()
            chrome_names = {
                e["name"] for e in chrome["traceEvents"] if e.get("ph") == "X"
            }
            assert "forensics.bisect.step" in chrome_names
        finally:
            trace_mod.uninstall()
            metrics_mod.uninstall()

    def test_tampered_event_log_is_rejected(self, recorded):
        recorded.use()
        tampered = EventLog(seed=recorded.outcome.events.seed)
        tampered.events = list(recorded.outcome.events.events[:-1])
        with pytest.raises(ForensicsError, match="match"):
            run_bisect(
                recorded.manifest, recorded.workload, recorded.spec,
                events=tampered,
            )


# ---------------------------------------------------------------------------
# targeted profile pessimization (the injection itself)
# ---------------------------------------------------------------------------


class TestTargetedPessimization:
    def make_profile(self):
        from repro.profiling.profile import BoltProfile

        profile = BoltProfile(sample_count=10, record_count=10)
        profile.block_counts = {
            "hot_fn#0": 100, "hot_fn#1": 90, "hot_fn#2": 10,
            "other#0": 50, "other#1": 5,
        }
        profile.branch_edges = {("hot_fn#0", "hot_fn#1"): 80, ("other#0", "other#1"): 4}
        profile.call_edges = {("other", "hot_fn"): 30}
        return profile

    def test_hottest_function_by_total_count(self):
        assert hottest_function(self.make_profile()) == "hot_fn"

    def test_targeted_inversion_drops_bystanders(self):
        out = inverted_profile(self.make_profile(), only_function="hot_fn")
        funcs = {label.rsplit("#", 1)[0] for label in out.block_counts}
        assert funcs == {"hot_fn"}, "bystander blocks must vanish"
        # surviving counts are inverted (cold blocks look hot)
        original = self.make_profile().block_counts
        for label, count in out.block_counts.items():
            assert count == 101 - original[label]
        # no edge may touch the target
        for table in (out.branch_edges, out.fallthrough_edges, out.call_edges):
            for a, b in table:
                assert "hot_fn" not in (a.rsplit("#", 1)[0], b.rsplit("#", 1)[0])

    def test_global_inversion_unchanged(self):
        out = inverted_profile(self.make_profile())
        assert out.block_counts["other#1"] == 96  # 100 + 1 - 5
