"""Integration tests for the paper's design principles as system invariants.

These drive the small generated server through full replacement cycles and
assert the §IV guarantees the whole design rests on.
"""

import pytest

from repro.binary.binaryfile import TEXT_BASE, bolt_text_base
from repro.core.orchestrator import Ocolos, OcolosConfig
from repro.harness.runner import launch, link_original, measure
from repro.vm.unwind import AddressIndex, live_code_pointers

QUICK = OcolosConfig(
    profile_seconds=0.03, perf_period=400, background_sim_cap_seconds=0.05
)


@pytest.fixture()
def optimized(small_server, small_inputs):
    """A small-server process that has been through one replacement."""
    process = launch(small_server, small_inputs["readish"], seed=8)
    process.run(max_transactions=300)
    binary = link_original(small_server)
    ocolos = Ocolos(
        process, binary, compiler_options=small_server.options, config=QUICK
    )
    report = ocolos.optimize_once()
    return small_server, process, ocolos, report


class TestDesignPrinciple1:
    """Preserve addresses of C_0 instructions."""

    def test_c0_bytes_only_change_at_rel32_immediates(
        self, small_server, small_inputs
    ):
        binary = link_original(small_server)
        text = binary.sections[".text"]
        process = launch(small_server, small_inputs["readish"], seed=8)
        process.run(max_transactions=300)
        before = process.address_space.read(text.addr, len(text.data))
        ocolos = Ocolos(
            process, binary, compiler_options=small_server.options, config=QUICK
        )
        ocolos.optimize_once()
        after = process.address_space.read(text.addr, len(text.data))

        from repro.core.patcher import scan_direct_call_sites

        sites = scan_direct_call_sites(binary)
        immediate_bytes = set()
        for site_list in sites.values():
            for site in site_list:
                for k in range(1, 5):
                    immediate_bytes.add(site.addr - text.addr + k)
        for i, (x, y) in enumerate(zip(before, after)):
            if x != y:
                assert i in immediate_bytes, f"non-immediate byte {i} changed"

    def test_old_code_pointers_still_work(self, optimized):
        _wl, process, _oc, _rep = optimized
        # run long enough for any stale pointer to be exercised
        before = process.counters_total().transactions
        process.run(max_transactions=500)
        assert process.counters_total().transactions >= before + 500


class TestDesignPrinciple2:
    """Run C_1 code in the common case."""

    def test_majority_of_execution_in_new_generation(self, optimized):
        _wl, process, _oc, rep = optimized
        process.run(max_transactions=300)
        gen_base = bolt_text_base(1)
        in_new = 0
        total = 0
        for _ in range(60):
            process.run(max_instructions=61)
            for thread in process.threads:
                total += 1
                if thread.pc >= gen_base:
                    in_new += 1
        assert in_new / total > 0.5


class TestDesignPrinciple3:
    """Fixed costs only: no recurring instrumentation beyond fp creation."""

    def test_wrap_hook_is_the_only_recurring_intervention(self, optimized):
        _wl, process, oc, _rep = optimized
        start = oc.fp_map.wraps_total
        delta = process.run(max_transactions=200)
        # the hook fires once per mkfp executed and is proportional to
        # fp creations, not to instructions
        fired = oc.fp_map.wraps_total - start
        assert fired == delta.fp_creations

    def test_function_pointers_always_reference_c0(self, optimized):
        wl, process, _oc, _rep = optimized
        process.run(max_transactions=400)
        binary = link_original(wl)
        for slot in range(binary.fp_slot_count):
            value = process.address_space.read_u64(binary.fp_slot_addr(slot))
            assert value < bolt_text_base(1), f"slot {slot} escaped C_0"
            assert value >= TEXT_BASE


class TestReplacementSafety:
    def test_all_live_code_pointers_resolve(self, optimized):
        wl, process, oc, _rep = optimized
        process.run(max_transactions=200)
        index = AddressIndex([link_original(wl), oc.current_binary])
        for addr, kind in live_code_pointers(process):
            assert index.resolve(addr) is not None, f"dangling {kind} {addr:#x}"

    def test_counters_monotone_across_replacement(
        self, small_server, small_inputs
    ):
        process = launch(small_server, small_inputs["writish"], seed=9)
        process.run(max_transactions=200)
        binary = link_original(small_server)
        ocolos = Ocolos(
            process, binary, compiler_options=small_server.options, config=QUICK
        )
        before = process.counters_total()
        ocolos.optimize_once()
        after = process.counters_total()
        assert after.instructions >= before.instructions
        assert after.transactions >= before.transactions

    def test_two_generations_back_to_back(self, optimized):
        wl, process, oc, _rep = optimized
        process.run(max_transactions=300)
        r2 = oc.optimize_once()
        assert r2.generation == 2
        process.run(max_transactions=300)
        r3 = oc.optimize_once()
        assert r3.generation == 3
        before = process.counters_total().transactions
        process.run(max_transactions=300)
        assert process.counters_total().transactions >= before + 300
