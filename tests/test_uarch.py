"""Tests for caches, TLB, BTB, predictors, backend model and TopDown."""

import pytest

from repro.uarch.branch_predictor import GsharePredictor, ReturnAddressStack
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.frontend import FrontEnd, UarchParams
from repro.uarch.memsys import BackendModel, MemoryControllerModel
from repro.uarch.perfcounters import PerfCounters
from repro.uarch.tlb import Tlb
from repro.uarch.topdown import topdown_from_counters


class TestCache:
    def test_miss_then_hit(self):
        cache = SetAssociativeCache(n_sets=4, ways=2)
        assert not cache.access(10)
        assert cache.access(10)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = SetAssociativeCache(n_sets=1, ways=2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # refresh 1: LRU is now 2
        cache.access(3)  # evicts 2
        assert cache.contains(1)
        assert not cache.contains(2)
        assert cache.contains(3)

    def test_set_isolation(self):
        cache = SetAssociativeCache(n_sets=2, ways=1)
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.contains(0) and cache.contains(1)
        cache.access(2)  # set 0, evicts 0
        assert not cache.contains(0)
        assert cache.contains(1)

    def test_geometry(self):
        cache = SetAssociativeCache.from_geometry(32 * 1024, 64, 8)
        assert cache.n_sets == 64
        assert cache.ways == 8

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(n_sets=3, ways=1)

    def test_flush_keeps_counters(self):
        cache = SetAssociativeCache(n_sets=2, ways=1)
        cache.access(0)
        cache.flush()
        assert cache.misses == 1
        assert not cache.contains(0)
        assert cache.resident_lines() == 0

    def test_cyclic_thrash_worst_case(self):
        """Cyclic sweep over capacity+1 lines with LRU misses every time."""
        cache = SetAssociativeCache(n_sets=1, ways=4)
        lines = list(range(5))
        for _ in range(3):
            for line in lines:
                cache.access(line)
        # after warmup round, everything misses
        assert cache.hits == 0


class TestTlb:
    def test_page_granularity(self):
        tlb = Tlb(entries=8, ways=8)
        assert not tlb.access_addr(0x1000)
        assert tlb.access_addr(0x1FFF)  # same 4 KiB page
        assert not tlb.access_addr(0x2000)

    def test_capacity(self):
        tlb = Tlb(entries=4, ways=4)
        for page in range(5):
            tlb.access_page(page)
        assert not tlb.access_page(0)  # evicted

    def test_flush(self):
        tlb = Tlb(entries=4, ways=4)
        tlb.access_page(1)
        tlb.flush()
        assert not tlb.access_page(1)
        assert tlb.misses == 2


class TestBtb:
    def test_miss_then_predict(self):
        btb = BranchTargetBuffer(entries=16, ways=4)
        assert not btb.lookup_update(0x100, 0x200)
        assert btb.lookup_update(0x100, 0x200)

    def test_target_mismatch_counts(self):
        btb = BranchTargetBuffer(entries=16, ways=4)
        btb.lookup_update(0x100, 0x200)
        assert not btb.lookup_update(0x100, 0x300)  # retrained
        assert btb.target_mismatches == 1
        assert btb.lookup_update(0x100, 0x300)

    def test_capacity_pressure(self):
        btb = BranchTargetBuffer(entries=4, ways=4)
        for pc in range(0, 5):
            btb.lookup_update(pc * 4, pc)
        # 5 distinct branches into 4 entries: at least one was evicted
        assert btb.resident_entries() == 4

    def test_flush(self):
        btb = BranchTargetBuffer(entries=4, ways=4)
        btb.lookup_update(0x100, 0x200)
        btb.flush()
        assert not btb.lookup_update(0x100, 0x200)


class TestPredictors:
    def test_gshare_learns_bias(self):
        bp = GsharePredictor(table_bits=8, history_bits=4)
        for _ in range(50):
            bp.record(0x40, True)
        correct = bp.record(0x40, True)
        assert correct

    def test_gshare_counts_mispredicts(self):
        bp = GsharePredictor(table_bits=8)
        for _ in range(10):
            bp.record(0x40, True)
        bp.record(0x40, False)
        assert bp.mispredictions >= 1

    def test_ras_correct_return(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.predict_return(0x200)
        assert ras.predict_return(0x100)
        assert ras.mispredictions == 0

    def test_ras_underflow_mispredicts(self):
        ras = ReturnAddressStack(depth=4)
        assert not ras.predict_return(0x100)
        assert ras.mispredictions == 1

    def test_ras_overflow_discards_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)
        assert ras.predict_return(0x3)
        assert ras.predict_return(0x2)
        assert not ras.predict_return(0x1)  # lost to overflow


class TestBackend:
    def test_class_costs(self):
        model = BackendModel(controller=MemoryControllerModel())
        stall, dram = model.stall_cycles([(0, 10), (2, 5)])
        assert dram == 0
        assert stall == pytest.approx(5 * model.class_costs[2])

    def test_dram_requests_counted(self):
        model = BackendModel(controller=MemoryControllerModel())
        _stall, dram = model.stall_cycles([(3, 7)])
        assert dram == 7

    def test_contention_multiplier_rises_with_rate(self):
        mc = MemoryControllerModel(service_rate=0.01)
        low_before = mc.multiplier
        for _ in range(50):
            mc.observe(90, 10000, frontend_share=0.1)
        assert mc.multiplier > low_before

    def test_fetch_smoothness_raises_penalty(self):
        stalled = MemoryControllerModel(service_rate=0.01)
        smooth = MemoryControllerModel(service_rate=0.01)
        for _ in range(50):
            stalled.observe(60, 10000, frontend_share=0.6)
            smooth.observe(60, 10000, frontend_share=0.05)
        assert smooth.multiplier > stalled.multiplier

    def test_utilization_capped(self):
        mc = MemoryControllerModel(service_rate=0.001, max_utilization=0.9)
        for _ in range(50):
            mc.observe(1000, 1000, frontend_share=0.0)
        assert mc.utilization <= 0.9

    def test_reset(self):
        mc = MemoryControllerModel()
        for _ in range(10):
            mc.observe(100, 1000)
        mc.reset()
        assert mc.multiplier == 1.0


class TestFrontEnd:
    def test_fetch_counts_instructions_and_lines(self):
        fe = FrontEnd()
        fe.fetch_run(0x1000, 130, 20)  # spans 3 lines
        c = fe.counters
        assert c.instructions == 20
        assert c.l1i_misses == 3
        fe.fetch_run(0x1000, 130, 20)
        assert fe.counters.l1i_misses == 3  # warm now

    def test_itlb_accounting(self):
        fe = FrontEnd()
        fe.fetch_run(0x1000, 16, 4)
        assert fe.counters.itlb_misses == 1
        fe.fetch_run(0x2000, 16, 4)  # new page
        assert fe.counters.itlb_misses == 2

    def test_not_taken_branch_costs_nothing_when_predicted(self):
        fe = FrontEnd()
        for _ in range(30):
            fe.branch_event("cond", 0x100, 0x200, taken=False)
        before = fe.counters.cycles
        fe.branch_event("cond", 0x100, 0x200, taken=False)
        assert fe.counters.cycles == before

    def test_taken_branch_costs_bubble(self):
        fe = FrontEnd()
        fe.branch_event("jmp", 0x100, 0x200)  # btb miss
        assert fe.counters.btb_misses == 1
        before = fe.counters.cycles
        fe.branch_event("jmp", 0x100, 0x200)  # now predicted
        assert fe.counters.cycles - before == pytest.approx(fe.params.taken_bubble)

    def test_indirect_mispredict_on_target_change(self):
        fe = FrontEnd()
        fe.branch_event("vcall", 0x100, 0x200, return_addr=0x105)
        fe.branch_event("vcall", 0x100, 0x300, return_addr=0x105)
        assert fe.counters.ind_mispredicts >= 1

    def test_call_ret_pair_uses_ras(self):
        fe = FrontEnd()
        fe.branch_event("call", 0x100, 0x500, return_addr=0x105)
        fe.branch_event("ret", 0x520, 0x105)
        assert fe.counters.ret_mispredicts == 0

    def test_idle_cycles_go_to_idle_bucket(self):
        fe = FrontEnd()
        fe.idle_cycles(100.0)
        assert fe.counters.cyc_idle == 100.0
        assert fe.counters.cycles == 100.0


class TestTopDown:
    def test_buckets_sum_to_100(self):
        c = PerfCounters(
            cycles=200.0,
            cyc_base=80,
            cyc_l1i=40,
            cyc_itlb=10,
            cyc_btb=10,
            cyc_taken=20,
            cyc_badspec=20,
            cyc_backend=20,
        )
        td = topdown_from_counters(c)
        total = td.retiring + td.frontend_bound + td.bad_speculation + td.backend_bound
        assert total == pytest.approx(100.0)

    def test_idle_excluded(self):
        c = PerfCounters(cycles=300.0, cyc_idle=100.0, cyc_base=100, cyc_backend=100)
        td = topdown_from_counters(c)
        assert td.retiring == pytest.approx(50.0)

    def test_latency_vs_bandwidth_split(self):
        c = PerfCounters(cycles=100.0, cyc_l1i=30, cyc_taken=20, cyc_base=50)
        td = topdown_from_counters(c)
        assert td.frontend_latency == pytest.approx(30.0)
        assert td.frontend_bandwidth == pytest.approx(20.0)

    def test_dominant(self):
        c = PerfCounters(cycles=100.0, cyc_backend=70, cyc_base=30)
        assert topdown_from_counters(c).dominant() == "backend_bound"

    def test_empty_counters(self):
        td = topdown_from_counters(PerfCounters())
        assert td.retiring == 0.0


class TestPerfCounters:
    def test_delta(self):
        a = PerfCounters(instructions=100, cycles=200.0)
        b = PerfCounters(instructions=150, cycles=300.0)
        d = b.delta(a)
        assert d.instructions == 50
        assert d.cycles == 100.0

    def test_merge(self):
        a = PerfCounters(instructions=100)
        a.merge(PerfCounters(instructions=50, taken_branches=5))
        assert a.instructions == 150
        assert a.taken_branches == 5

    def test_mpki_helpers(self):
        c = PerfCounters(instructions=2000, l1i_misses=10, itlb_misses=4,
                         taken_branches=300, cond_mispredicts=6)
        assert c.l1i_mpki == pytest.approx(5.0)
        assert c.itlb_mpki == pytest.approx(2.0)
        assert c.taken_branch_pki == pytest.approx(150.0)
        assert c.mispredict_pki == pytest.approx(3.0)

    def test_ipc(self):
        c = PerfCounters(instructions=400, cycles=200.0)
        assert c.ipc == pytest.approx(2.0)
