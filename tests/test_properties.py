"""Property-based tests (hypothesis) for core data structures and invariants."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bolt.bb_reorder import chain_layout_score, reorder_blocks
from repro.bolt.func_reorder import c3_order, pettis_hansen_order
from repro.isa.assembler import encode_instruction, patch_rel32
from repro.isa.disassembler import decode_instruction
from repro.isa.instructions import (
    Instruction,
    Opcode,
    br_cond,
    call,
    jmp,
    jtab,
    mkfp,
)
from repro.uarch.cache import SetAssociativeCache
from repro.uarch.perfcounters import PerfCounters
from repro.uarch.topdown import topdown_from_counters
from repro.workloads.inputs import InputSpec, merge_input_specs

# keep all addresses within one rel32 displacement of each other
addr_st = st.integers(min_value=0x1000, max_value=0x7FFF_F000)
site_st = st.integers(min_value=0, max_value=0x7FFF)


class TestCodecProperties:
    @given(site=site_st, base=addr_st, target=addr_st, invert=st.booleans())
    @settings(max_examples=200)
    def test_br_cond_roundtrip(self, site, base, target, invert):
        insn = br_cond(site, target, invert=invert)
        encoded = encode_instruction(insn, base, {})
        decoded = decode_instruction(lambda a, n: encoded[a - base : a - base + n], base)
        assert decoded.site == site
        assert decoded.target == target
        assert decoded.invert == invert

    @given(base=addr_st, target=addr_st)
    @settings(max_examples=200)
    def test_call_roundtrip(self, base, target):
        encoded = encode_instruction(call(target), base, {})
        decoded = decode_instruction(lambda a, n: encoded[a - base : a - base + n], base)
        assert decoded.target == target

    @given(base=addr_st, t1=addr_st, t2=addr_st)
    @settings(max_examples=200)
    def test_patch_rel32_then_decode(self, base, t1, t2):
        code = bytearray(encode_instruction(jmp(t1), base, {}))
        patch_rel32(code, 0, base, t2)
        decoded = decode_instruction(
            lambda a, n: bytes(code[a - base : a - base + n]), base
        )
        assert decoded.target == t2

    @given(
        func=st.integers(min_value=0, max_value=2**32 - 1),
        slot=st.integers(min_value=0, max_value=0xFFFF),
        wrapped=st.booleans(),
        base=addr_st,
    )
    @settings(max_examples=200)
    def test_mkfp_roundtrip(self, func, slot, wrapped, base):
        encoded = encode_instruction(mkfp(func, slot, wrapped), base, {})
        decoded = decode_instruction(lambda a, n: encoded[a - base : a - base + n], base)
        assert (decoded.target, decoded.slot, decoded.wrapped) == (func, slot, wrapped)


class TestCacheProperties:
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300),
        ways=st.sampled_from([1, 2, 4, 8]),
        n_sets=st.sampled_from([1, 2, 8, 64]),
    )
    @settings(max_examples=100)
    def test_counters_consistent(self, lines, ways, n_sets):
        cache = SetAssociativeCache(n_sets=n_sets, ways=ways)
        for line in lines:
            cache.access(line)
        assert cache.hits + cache.misses == len(lines)
        assert cache.resident_lines() <= n_sets * ways

    @given(lines=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_second_pass_within_capacity_all_hits(self, lines):
        distinct = list(dict.fromkeys(lines))
        if len(distinct) > 8:
            distinct = distinct[:8]
        cache = SetAssociativeCache(n_sets=1, ways=8)
        for line in distinct:
            cache.access(line)
        before = cache.misses
        for line in distinct:
            assert cache.access(line)
        assert cache.misses == before


class TestReorderProperties:
    edges_st = st.dictionaries(
        st.tuples(st.integers(0, 11), st.integers(0, 11)),
        st.integers(min_value=1, max_value=1000),
        max_size=30,
    )

    @given(edges=edges_st, n=st.integers(min_value=1, max_value=12))
    @settings(max_examples=150)
    def test_reorder_is_permutation_with_entry_first(self, edges, n):
        edges = {k: v for k, v in edges.items() if k[0] < n and k[1] < n}
        order = reorder_blocks(n, edges, {})
        assert sorted(order) == list(range(n))
        assert order[0] == 0

    @given(edges=edges_st, n=st.integers(min_value=2, max_value=12))
    @settings(max_examples=150)
    def test_reorder_never_worse_than_source_order(self, edges, n):
        edges = {k: v for k, v in edges.items() if k[0] < n and k[1] < n and k[0] != k[1]}
        counts = {b: 1 for b in range(n)}
        optimized = reorder_blocks(n, edges, counts)
        source = list(range(n))
        assert chain_layout_score(optimized, edges) >= chain_layout_score(source, edges) or (
            # greedy chaining is near-optimal but not provably optimal; allow
            # ties within the heaviest single edge weight
            chain_layout_score(source, edges) - chain_layout_score(optimized, edges)
            <= max(edges.values(), default=0)
        )

    @given(
        hotness=st.dictionaries(
            st.sampled_from([f"f{i}" for i in range(8)]),
            st.integers(min_value=0, max_value=100),
            min_size=1,
        ),
        calls=st.dictionaries(
            st.tuples(
                st.sampled_from([f"f{i}" for i in range(8)]),
                st.sampled_from([f"f{i}" for i in range(8)]),
            ),
            st.integers(min_value=1, max_value=50),
            max_size=16,
        ),
    )
    @settings(max_examples=150)
    def test_function_orders_are_permutations(self, hotness, calls):
        for order in (c3_order(hotness, calls), pettis_hansen_order(hotness, calls)):
            assert sorted(order) == sorted(hotness)


class TestTopDownProperties:
    @given(
        base=st.floats(min_value=0, max_value=1000),
        l1i=st.floats(min_value=0, max_value=1000),
        taken=st.floats(min_value=0, max_value=1000),
        badspec=st.floats(min_value=0, max_value=1000),
        backend=st.floats(min_value=0, max_value=1000),
        idle=st.floats(min_value=0, max_value=1000),
    )
    @settings(max_examples=200)
    def test_buckets_sum_to_100_over_busy(self, base, l1i, taken, badspec, backend, idle):
        busy = base + l1i + taken + badspec + backend
        if busy < 1e-6 * max(1.0, idle):
            return  # busy time below float resolution next to idle time
        c = PerfCounters(
            cycles=busy + idle,
            cyc_base=base,
            cyc_l1i=l1i,
            cyc_taken=taken,
            cyc_badspec=badspec,
            cyc_backend=backend,
            cyc_idle=idle,
        )
        td = topdown_from_counters(c)
        total = td.retiring + td.frontend_bound + td.bad_speculation + td.backend_bound
        assert abs(total - 100.0) < 0.01  # cancellation tolerance (cycles - idle)
        assert 0 <= td.frontend_latency <= td.frontend_bound + 1e-9


class TestInputMergeProperties:
    @given(
        biases=st.lists(
            st.dictionaries(
                st.integers(min_value=1, max_value=20),
                st.floats(min_value=0.0, max_value=1.0),
                min_size=1,
                max_size=10,
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=100)
    def test_merged_bias_within_bounds(self, biases):
        specs = [InputSpec(name=f"i{k}", branch_bias=b) for k, b in enumerate(biases)]
        merged = merge_input_specs("all", specs)
        for site, p in merged.branch_bias.items():
            values = [s.branch_bias.get(site, s.default_branch_bias) for s in specs]
            assert min(values) - 1e-9 <= p <= max(values) + 1e-9
