"""Tests for LBR sampling, perf sessions, perf2bolt aggregation and the
stage-1 DMon check."""

import pytest

from repro.errors import ProfileError
from repro.profiling.dmon import diagnose_frontend
from repro.profiling.perf import PerfSession, profile_for_duration
from repro.profiling.perf2bolt import extract_profile
from repro.profiling.profile import BlockSpanIndex, BoltProfile


class TestPerfSession:
    def test_attach_enables_lbr(self, tiny):
        proc = tiny.process()
        session = PerfSession(period=500)
        session.attach(proc)
        assert proc.lbr_enabled
        session.detach()
        assert not proc.lbr_enabled

    def test_double_attach_rejected(self, tiny):
        proc = tiny.process()
        s1 = PerfSession()
        s1.attach(proc)
        with pytest.raises(ProfileError):
            PerfSession().attach(proc)
        with pytest.raises(ProfileError):
            s1.attach(proc)
        s1.detach()

    def test_detach_without_attach_rejected(self):
        with pytest.raises(ProfileError):
            PerfSession().detach()

    def test_samples_collected_with_period(self, tiny):
        proc = tiny.process()
        session = PerfSession(period=400, overhead=0.0)
        session.attach(proc)
        proc.run(max_instructions=20_000)
        session.detach()
        assert session.sample_count >= 20
        assert session.record_count <= session.sample_count * 32

    def test_overhead_charged(self, tiny):
        base = tiny.process(seed=3)
        base.run(max_instructions=20_000)
        idle_free = base.counters_total().cyc_idle

        proc = tiny.process(seed=3)
        session = PerfSession(period=400, overhead=0.25)
        session.attach(proc)
        proc.run(max_instructions=20_000)
        session.detach()
        assert proc.counters_total().cyc_idle > idle_free

    def test_profile_for_duration_detaches(self, tiny):
        proc = tiny.process()
        session = profile_for_duration(proc, 0.02, period=400)
        assert not proc.lbr_enabled
        assert session.sample_count > 0


class TestPerf2Bolt:
    @pytest.fixture()
    def session(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=50)
        session = PerfSession(period=300, overhead=0.0)
        session.attach(proc)
        proc.run(max_instructions=60_000)
        session.detach()
        return session

    def test_profile_maps_to_blocks(self, tiny, session):
        profile, stats = extract_profile(session.samples, tiny.binary)
        assert not profile.is_empty()
        assert stats.resolved_records > 0
        index = tiny.binary.block_index()
        for label in profile.block_counts:
            assert label in index

    def test_hot_functions_ranked(self, tiny, session):
        profile, _ = extract_profile(session.samples, tiny.binary)
        hot = profile.hot_functions()
        assert "main" in hot
        counts = [
            sum(profile.function_block_counts(f).values()) for f in hot
        ]
        assert counts == sorted(counts, reverse=True)

    def test_call_graph_edges(self, tiny, session):
        profile, _ = extract_profile(session.samples, tiny.binary)
        callers_of_helper2 = [
            a for (a, b) in profile.call_edges if b == "helper2"
        ]
        assert "main" in callers_of_helper2

    def test_fallthrough_reconstruction(self, tiny, session):
        profile, _ = extract_profile(session.samples, tiny.binary)
        assert profile.fallthrough_edges  # linear paths between records

    def test_function_edges_by_id(self, tiny, session):
        profile, _ = extract_profile(session.samples, tiny.binary)
        edges = profile.function_edges("helper2")
        for (src, dst) in edges:
            assert 0 <= src < 4 and 0 <= dst < 4

    def test_mismatched_binary_rejected(self, tiny, session):
        from repro.binary.linker import link_program
        from repro.compiler.layout import source_order_layout

        # relink at a shifted base: old addresses resolve nowhere
        shifted = link_program(
            tiny.program,
            source_order_layout(tiny.program, base=0x0300_0000),
            tiny.options,
            name="shifted",
        )
        with pytest.raises(ProfileError):
            extract_profile(session.samples, shifted)


class TestBoltProfileType:
    def test_merge_accumulates(self):
        a = BoltProfile(block_counts={"f#0": 2}, sample_count=1)
        b = BoltProfile(block_counts={"f#0": 3, "g#0": 1}, sample_count=2)
        a.merge(b)
        assert a.block_counts == {"f#0": 5, "g#0": 1}
        assert a.sample_count == 3

    def test_scaled(self):
        p = BoltProfile(block_counts={"f#0": 10}, branch_edges={("f#0", "f#1"): 4})
        half = p.scaled(0.5)
        assert half.block_counts["f#0"] == 5
        assert half.branch_edges[("f#0", "f#1")] == 2

    def test_block_span_index(self, tiny):
        index = BlockSpanIndex(tiny.binary)
        info = tiny.binary.functions["helper0"]
        block = info.blocks[0]
        assert index.label_at(block.addr) == block.label
        mid = block.addr + block.size // 2
        assert index.label_at(mid) == block.label
        assert index.label_at(0) is None

    def test_labels_between(self, tiny):
        index = BlockSpanIndex(tiny.binary)
        info = tiny.binary.functions["helper0"]
        lo = info.blocks[0].addr
        hi = info.blocks[-1].addr
        labels = index.labels_between(lo, hi)
        assert labels[0] == info.blocks[0].label
        assert info.blocks[-1].label in labels
        assert index.labels_between(hi, lo) == []


class TestDmon:
    def test_diagnosis_fields(self, tiny):
        proc = tiny.process()
        diag = diagnose_frontend(proc, window_instructions=20_000)
        assert 0 <= diag.topdown.frontend_latency <= 100
        assert diag.should_optimize == diag.frontend_bound

    def test_threshold_extremes(self, tiny):
        proc = tiny.process()
        assert diagnose_frontend(proc, window_instructions=5_000, threshold=0.0).should_optimize
        assert not diagnose_frontend(
            proc, window_instructions=5_000, threshold=101.0
        ).should_optimize
