"""Tests for the timeline and experiment drivers at small scale.

The drivers are written against the workload registry in
:mod:`repro.harness.experiments`; these tests register a miniature bundle so
the full machinery runs in seconds.
"""

import pytest

from repro.harness import experiments
from repro.harness.experiments import (
    WorkloadBundle,
    breakeven_analysis,
    fig9_topdown_points,
    full_pipeline,
    table2_fixed_costs,
    workload_bundle,
)
from repro.harness.timeline import fig7_timeline


@pytest.fixture(scope="module")
def mini_bundle(small_server, small_inputs):
    """Register the small server as workload 'mini' for driver tests."""
    bundle = WorkloadBundle(
        name="mini",
        workload=small_server,
        inputs=dict(small_inputs),
        eval_inputs=list(small_inputs),
    )
    experiments.register_bundle("mini", bundle)
    experiments.TABLE2_INPUTS["mini"] = "readish"
    yield bundle
    experiments.unregister_bundle("mini")
    experiments.TABLE2_INPUTS.pop("mini", None)


class TestRegistry:
    def test_known_workloads_enumerated(self):
        assert set(experiments.WORKLOADS) == {
            "mysql",
            "mongodb",
            "memcached",
            "verilator",
        }

    def test_unknown_bundle_rejected(self):
        with pytest.raises(KeyError):
            workload_bundle("oracle_db")


class TestFullPipeline:
    def test_pipeline_result_fields(self, mini_bundle):
        pipe = full_pipeline("mini", "readish", transactions=150)
        assert pipe.original.tps > 0
        assert pipe.ocolos.tps > 0
        assert pipe.bolt_oracle.tps > 0
        assert pipe.bolt_result.binary.bolted
        assert pipe.rss_ocolos >= pipe.rss_original

    def test_pipeline_cached(self, mini_bundle):
        a = full_pipeline("mini", "readish", transactions=150)
        b = full_pipeline("mini", "readish", transactions=150)
        assert a is b

    def test_speedup_properties(self, mini_bundle):
        pipe = full_pipeline("mini", "readish", transactions=150)
        assert pipe.ocolos_speedup == pytest.approx(
            pipe.ocolos.tps / pipe.original.tps
        )
        assert pipe.bolt_speedup == pytest.approx(
            pipe.bolt_oracle.tps / pipe.original.tps
        )


class TestDrivers:
    def test_table2_uses_workload_scale(self, mini_bundle):
        cols = table2_fixed_costs(workload_names=["mini"], transactions=150)
        assert len(cols) == 1
        col = cols[0]
        assert col.perf2bolt_seconds > 0
        assert col.llvm_bolt_seconds > 0
        assert col.replacement_seconds > 0

    def test_fig9_points(self, mini_bundle):
        points = fig9_topdown_points(workload_names=["mini"], transactions=150)
        assert len(points) == 2
        for p in points:
            assert 0 <= p.frontend_latency <= 100
            assert 0 <= p.retiring <= 100
            assert p.benefits == (p.ocolos_speedup >= 1.05)

    def test_breakeven(self, mini_bundle):
        result = breakeven_analysis("mini", "readish", transactions=150)
        assert result.disruption_seconds > 0
        assert result.break_even_after_seconds >= 0


class TestTimeline:
    def test_series_structure(self, mini_bundle):
        result = fig7_timeline(
            "mini",
            "readish",
            warmup_seconds=3,
            profile_display_seconds=4,
            post_seconds=3,
            transactions=150,
        )
        regions = [p.region for p in result.points]
        assert regions == sorted(regions)  # monotone region progression
        assert set(regions) == {1, 2, 3, 4, 5}
        assert result.tps_profiling < result.tps_original
        assert result.pause_seconds > 0

    def test_p95_summary_ordering(self, mini_bundle):
        result = fig7_timeline(
            "mini",
            "readish",
            warmup_seconds=3,
            profile_display_seconds=4,
            post_seconds=3,
            transactions=150,
        )
        warm, worst, post = result.p95_summary()
        assert worst >= warm  # optimization phases degrade latency
        assert post > 0

    def test_region_labels(self, mini_bundle):
        result = fig7_timeline(
            "mini",
            "readish",
            warmup_seconds=2,
            profile_display_seconds=2,
            post_seconds=2,
            transactions=120,
        )
        labels = [label for _s, label in result.region_bounds]
        assert labels[0].startswith("warm-up")
        assert any("replacement" in l for l in labels)
        assert labels[-1] == "optimized"
