"""Tests for the compiler IR and site table."""

import pytest

from repro.compiler.ir import (
    BasicBlock,
    CondBr,
    Halt,
    IRFunction,
    Jump,
    Program,
    Ret,
    SiteKind,
    SiteTable,
    Switch,
    VTableSpec,
)
from repro.errors import WorkloadError
from repro.isa.instructions import alu, call, jmp, mkfp


def make_function(name="f", n_blocks=2):
    func = IRFunction(name)
    for _ in range(n_blocks):
        func.new_block()
    for i, block in enumerate(func.blocks):
        block.terminator = Jump(i + 1) if i + 1 < n_blocks else Ret()
    return func


class TestSiteTable:
    def test_allocation_is_sequential_and_nonzero(self):
        table = SiteTable()
        s1 = table.allocate(SiteKind.BRANCH, "f")
        s2 = table.allocate(SiteKind.VCALL, "g")
        assert s1 == 1 and s2 == 2

    def test_info_lookup(self):
        table = SiteTable()
        site = table.allocate(SiteKind.SWITCH, "f", n_cases=4)
        info = table.info(site)
        assert info.kind == SiteKind.SWITCH
        assert info.function == "f"
        assert info.n_cases == 4

    def test_derived_sites_are_cached(self):
        table = SiteTable()
        sw = table.allocate(SiteKind.SWITCH, "f", n_cases=3)
        d1 = table.allocate_derived(sw, 0, "f")
        d2 = table.allocate_derived(sw, 0, "f")
        d3 = table.allocate_derived(sw, 1, "f")
        assert d1 == d2
        assert d3 != d1
        assert table.info(d1).derived_from == (sw, 0)

    def test_contains_and_len(self):
        table = SiteTable()
        site = table.allocate(SiteKind.BRANCH)
        assert site in table
        assert (site + 1) not in table
        assert len(table) == 1

    def test_by_kind(self):
        table = SiteTable()
        b = table.allocate(SiteKind.BRANCH)
        v = table.allocate(SiteKind.VCALL)
        assert table.by_kind(SiteKind.BRANCH) == [b]
        assert table.by_kind(SiteKind.VCALL) == [v]


class TestBlocks:
    def test_successors_cond(self):
        block = BasicBlock(bb_id=0, terminator=CondBr(site=1, taken=2, fallthrough=1))
        assert block.successors() == (2, 1)

    def test_successors_switch_dedup(self):
        block = BasicBlock(bb_id=0, terminator=Switch(site=1, targets=(1, 2, 1)))
        assert block.successors() == (1, 2)

    def test_successors_ret_halt_empty(self):
        assert BasicBlock(bb_id=0, terminator=Ret()).successors() == ()
        assert BasicBlock(bb_id=0, terminator=Halt()).successors() == ()


class TestValidation:
    def test_function_without_blocks_rejected(self):
        with pytest.raises(WorkloadError):
            IRFunction("empty").validate()

    def test_block_id_mismatch_rejected(self):
        func = make_function()
        func.blocks[1].bb_id = 5
        with pytest.raises(WorkloadError):
            func.validate()

    def test_dangling_successor_rejected(self):
        func = make_function()
        func.blocks[0].terminator = Jump(9)
        with pytest.raises(WorkloadError):
            func.validate()

    def test_control_flow_in_body_rejected(self):
        func = make_function()
        func.blocks[0].body = [jmp(1)]
        with pytest.raises(WorkloadError):
            func.validate()

    def test_calls_allowed_in_body(self):
        prog = Program(name="p", entry="f")
        func = make_function()
        func.blocks[0].body = [call("f")]
        prog.add_function(func)
        prog.validate()

    def test_missing_entry_rejected(self):
        prog = Program(name="p", entry="nope")
        prog.add_function(make_function("f"))
        with pytest.raises(WorkloadError):
            prog.validate()

    def test_call_to_undefined_function_rejected(self):
        prog = Program(name="p", entry="f")
        func = make_function()
        func.blocks[0].body = [call("ghost")]
        prog.add_function(func)
        with pytest.raises(WorkloadError):
            prog.validate()

    def test_mkfp_of_undefined_function_rejected(self):
        prog = Program(name="p", entry="f")
        func = make_function()
        func.blocks[0].body = [mkfp("ghost", 0)]
        prog.fp_slot_count = 1
        prog.add_function(func)
        with pytest.raises(WorkloadError):
            prog.validate()

    def test_vtable_slot_must_resolve(self):
        prog = Program(name="p", entry="f")
        prog.add_function(make_function())
        prog.vtables = [VTableSpec(class_id=0, slots=["ghost"])]
        with pytest.raises(WorkloadError):
            prog.validate()

    def test_fp_init_slot_range_checked(self):
        prog = Program(name="p", entry="f")
        prog.add_function(make_function())
        prog.fp_slot_count = 1
        prog.fp_init = {3: "f"}
        with pytest.raises(WorkloadError):
            prog.validate()

    def test_duplicate_function_rejected(self):
        prog = Program(name="p", entry="f")
        prog.add_function(make_function())
        with pytest.raises(WorkloadError):
            prog.add_function(make_function())

    def test_block_count(self):
        prog = Program(name="p", entry="f")
        prog.add_function(make_function("f", 3))
        prog.add_function(make_function("g", 2))
        assert prog.block_count() == 5
