"""Tests for the observability subsystem (repro.obs): tracing, metrics,
structured logging, and the pipeline instrumentation built on them."""

import io
import json
import logging
import math

import pytest

from repro import obs
from repro.core.orchestrator import Ocolos, OcolosConfig
from repro.harness.reporting import format_table, format_timeline
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer


QUICK = OcolosConfig(
    profile_seconds=0.02, perf_period=400, background_sim_cap_seconds=0.05
)

#: The six pipeline steps of paper §III, in order.
PIPELINE_SPANS = [
    ("ocolos.profile", 1),
    ("ocolos.build", 2),
    ("ocolos.pause", 3),
    ("ocolos.inject", 4),
    ("ocolos.patch", 5),
    ("ocolos.resume", 6),
]


@pytest.fixture()
def enabled():
    """Full observability on for the duration of one test."""
    tracer, registry = obs.enable()
    yield tracer, registry
    obs.disable()


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_depth_and_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("sibling") as sib:
                pass
        assert outer.depth == 0 and outer.parent_id is None
        assert mid.depth == 1 and mid.parent_id == outer.span_id
        assert inner.depth == 2 and inner.parent_id == mid.span_id
        assert sib.depth == 1 and sib.parent_id == outer.span_id
        # Finished in completion (inner-first) order.
        assert [s.name for s in tracer.finished] == [
            "inner", "mid", "sibling", "outer",
        ]

    def test_exception_unwinds_open_children(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.span("abandoned")  # opened, never closed
                raise RuntimeError("boom")
        with tracer.span("next") as nxt:
            pass
        assert nxt.depth == 0  # the stack recovered

    def test_module_span_is_null_when_disabled(self):
        assert obs_trace.current() is None
        with obs_trace.span("anything", k=1) as sp:
            assert sp is NULL_SPAN
        assert sp.set_attrs(x=2) is sp  # chainable no-ops

    def test_module_span_records_when_enabled(self, enabled):
        tracer, _ = enabled
        with obs_trace.span("unit.work", size=3) as sp:
            sp.set_attrs(done=True)
        (found,) = tracer.find("unit.work")
        assert found.attrs == {"size": 3, "done": True}

    def test_sim_clock_binding_and_override(self):
        now = [1.0]
        tracer = Tracer(sim_clock=lambda: now[0])
        with tracer.span("timed") as sp:
            now[0] = 4.0
        assert sp.sim_start == 1.0 and sp.sim_duration == pytest.approx(3.0)
        with tracer.span("modelled") as sp2:
            sp2.set_sim_duration(42.0)
        assert sp2.sim_duration == 42.0

    def test_apportion_partitions_parent_window(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            children = [tracer.span(f"c{i}") for i in range(3)]
            for child in reversed(children):
                child.__exit__(None, None, None)
        obs_trace.apportion(parent, children, 0.9)
        assert sum(c.sim_duration for c in children) == pytest.approx(0.9)
        assert children[0].sim_start == parent.sim_start
        for a, b in zip(children, children[1:]):
            assert b.sim_start == pytest.approx(a.sim_start + a.sim_duration)

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", step=1):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == ["a", "b"]
        for row in rows:
            for key in ("span_id", "depth", "sim_start", "sim_duration",
                        "wall_start", "wall_duration", "attrs"):
                assert key in row

    def test_chrome_trace_schema(self, tmp_path):
        tracer = Tracer()
        with tracer.span("phase", step=2) as sp:
            sp.set_sim_duration(1.5)
        doc = tracer.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 1
        (ev,) = xs
        assert ev["name"] == "phase"
        assert ev["dur"] == pytest.approx(1.5e6)  # microseconds
        for key in ("ts", "pid", "tid", "cat", "args"):
            assert key in ev
        # The whole document must be valid JSON.
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        assert json.loads(path.read_text())["traceEvents"]


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "things")
        c.inc()
        c.inc(4)
        assert reg.snapshot().value("x_total") == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(10.0)
        g.inc(-2.5)
        assert reg.snapshot().value("level") == 7.5

    def test_labels_are_independent_series(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total")
        c.labels(kind="a").inc(2)
        c.labels(kind="b").inc(3)
        snap = reg.snapshot()
        assert snap.value("req_total", kind="a") == 2
        assert snap.value("req_total", kind="b") == 3

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = reg.snapshot()
        cell = snap.value("lat")
        assert cell["buckets"] == {"0.1": 1, "1.0": 2, "10.0": 1, "+Inf": 1}
        assert cell["count"] == 5
        assert cell["sum"] == pytest.approx(56.05)
        assert h.bucket_counts() == [1, 2, 1, 1]

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_snapshot_diff(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        g = reg.gauge("depth")
        c.inc(10)
        g.set(3)
        older = reg.snapshot()
        c.inc(7)
        g.set(9)
        diff = reg.snapshot().diff(older)
        assert diff.value("n_total") == 7  # counters subtract
        assert diff.value("depth") == 9  # gauges keep the new level

    def test_export_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total", "help text").inc(2)
        path = tmp_path / "metrics.json"
        reg.export(str(path))
        doc = json.loads(path.read_text())
        assert doc["a_total"]["kind"] == "counter"
        assert doc["a_total"]["series"][""] == 2

    def test_vm_counters_require_enablement(self):
        assert obs_metrics.current() is None
        assert obs_metrics.vm_counters() is None

    def test_vm_counters_fresh_per_call(self, enabled):
        a = obs_metrics.vm_counters()
        b = obs_metrics.vm_counters()
        assert a is not None and b is not None and a is not b


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


class TestStructuredLog:
    def teardown_method(self):
        root = logging.getLogger(obs_log.ROOT_NAME)
        for handler in list(root.handlers):
            if getattr(handler, "_obs_handler", False):
                root.removeHandler(handler)

    def test_json_lines(self):
        stream = io.StringIO()
        obs_log.configure(json_output=True, stream=stream)
        obs_log.get_logger("test").info("unit.event", n=3, name="x")
        doc = json.loads(stream.getvalue().strip())
        assert doc["event"] == "unit.event"
        assert doc["logger"] == "repro.test"
        assert doc["level"] == "info"
        assert doc["n"] == 3 and doc["name"] == "x"

    def test_key_value_lines(self):
        stream = io.StringIO()
        obs_log.configure(json_output=False, stream=stream)
        obs_log.get_logger("test").warning("unit.warn", ratio=0.25)
        line = stream.getvalue().strip()
        assert "unit.warn" in line and "ratio=0.25" in line and "warning" in line

    def test_configure_idempotent(self):
        stream = io.StringIO()
        obs_log.configure(stream=stream)
        obs_log.configure(stream=stream)
        root = logging.getLogger(obs_log.ROOT_NAME)
        marked = [h for h in root.handlers if getattr(h, "_obs_handler", False)]
        assert len(marked) == 1


# ---------------------------------------------------------------------------
# reporting (satellite: _fmt edge cases + timeline renderer)
# ---------------------------------------------------------------------------


class TestReportingEdgeCases:
    def test_nan_inf_render(self):
        out = format_table(["v"], [[float("nan")], [float("inf")], [float("-inf")]])
        assert "nan" in out and "inf" in out and "-inf" in out

    def test_negative_magnitudes_bucket_like_positive(self):
        out = format_table(["v"], [[-12345.6], [-42.0], [-1.2345]])
        assert "-12,346" in out
        assert "-42.0" in out
        assert "-1.234" in out or "-1.235" in out

    def test_numeric_columns_right_aligned(self):
        out = format_table(["name", "v"], [["a", 1.0], ["bb", 22.0]])
        rows = out.splitlines()[2:]
        # numeric cells line up on their right edge
        assert rows[0].endswith("1.000") and rows[1].endswith("22.0")
        assert len(rows[0]) == len(rows[1])
        # string column stays left-aligned
        assert rows[0].startswith("a ") and rows[1].startswith("bb")

    def test_timeline_renderer(self):
        spans = [
            {"name": "root", "span_id": 1, "depth": 0,
             "sim_start": 0.0, "sim_duration": 2.0, "attrs": {}},
            {"name": "child", "span_id": 2, "depth": 1,
             "sim_start": 1.0, "sim_duration": 1.0, "attrs": {"step": 4}},
        ]
        out = format_timeline(spans, width=10)
        assert "root" in out and "  child [step 4]" in out
        assert "|" in out and "#" in out
        assert format_timeline([]) == "(empty trace)"


# ---------------------------------------------------------------------------
# pipeline integration
# ---------------------------------------------------------------------------


class TestPipelineInstrumentation:
    def _optimize(self, bundle):
        proc = bundle.process()
        proc.run(max_transactions=50)
        ocolos = Ocolos(
            proc, bundle.binary,
            compiler_options=bundle.options, config=QUICK,
        )
        report = ocolos.optimize_once()
        return proc, ocolos, report

    def test_trace_contains_six_steps_in_order(self, tiny_fresh, enabled):
        """Regression: an orchestrator trace IS the paper's 6-step pipeline."""
        tracer, _ = enabled
        self._optimize(tiny_fresh)
        steps = tracer.pipeline_steps()
        assert [(s.name, s.attrs["step"]) for s in steps] == PIPELINE_SPANS

    def test_continuous_round_traces_six_steps(self, tiny_fresh, enabled):
        tracer, _ = enabled
        proc, ocolos, _ = self._optimize(tiny_fresh)
        tracer.clear()
        proc.run(max_transactions=100)
        report = ocolos.optimize_once()
        assert report.continuous is not None
        steps = tracer.pipeline_steps()
        assert [(s.name, s.attrs["step"]) for s in steps] == PIPELINE_SPANS

    def test_span_durations_match_cost_model(self, tiny_fresh, enabled):
        """Acceptance: trace durations reconcile with the cost model <1%."""
        tracer, _ = enabled
        _, _, report = self._optimize(tiny_fresh)
        (profile,) = tracer.find("ocolos.profile")
        assert profile.sim_duration == pytest.approx(QUICK.profile_seconds, rel=0.01)
        (build,) = tracer.find("ocolos.build")
        assert build.sim_duration == pytest.approx(
            report.costs.background_seconds, rel=0.01
        )
        (replace,) = tracer.find("ocolos.replace")
        assert replace.sim_duration == pytest.approx(report.pause_seconds, rel=0.01)
        steps = tracer.pipeline_steps()
        pause_parts = sum(s.sim_duration for s in steps if s.attrs["step"] >= 3)
        assert pause_parts == pytest.approx(report.pause_seconds, rel=0.01)

    def test_interpreter_counters_match_perfcounters_exactly(
        self, tiny_fresh, enabled
    ):
        """Acceptance: obs instruction/branch counts == PerfCounters totals."""
        proc = tiny_fresh.process()
        observer = proc.interpreter.observer
        assert observer is not None  # picked up at construction
        proc.run(max_transactions=400)
        totals = proc.counters_total()
        assert observer.instructions == totals.instructions
        assert observer.branches == totals.branches

    def test_interpreter_observer_detach(self, tiny_fresh, enabled):
        proc = tiny_fresh.process()
        proc.interpreter.set_observer(None)
        proc.run(max_transactions=50)
        assert proc.counters_total().instructions > 0

    def test_no_observer_when_disabled(self, tiny_fresh):
        proc = tiny_fresh.process()
        assert proc.interpreter.observer is None
        proc.run(max_transactions=50)

    def test_metrics_published_by_pipeline(self, tiny_fresh, enabled):
        _, registry = enabled
        self._optimize(tiny_fresh)
        snap = registry.snapshot()
        assert snap.value("ocolos.optimizations_total", skipped="no") == 1
        assert snap.value("bolt.runs_total") == 1
        assert snap.value("perf.samples_total") > 0
        assert snap.value("perf2bolt.runs_total") == 1

    def test_perfcounters_publish_bridge(self, tiny_fresh, enabled):
        _, registry = enabled
        proc = tiny_fresh.process()
        proc.run(max_transactions=100)
        totals = proc.counters_total()
        totals.publish(registry, prefix="vm")
        snap = registry.snapshot()
        assert snap.value("vm.instructions") == totals.instructions
        assert snap.value("vm.ipc") == pytest.approx(totals.ipc)
