"""Layout autotuner: parameter space, staged search, policy artifacts.

The determinism guarantees under test are the acceptance criteria of the
search driver: same seed + warm cache reproduces the identical winner with
identical cell fingerprints and zero rebuilds, and successive-halving
promotion is invariant under scheduler parallelism (``jobs=1`` == ``jobs=4``).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.bolt.optimizer import BoltOptions, run_bolt
from repro.engine import cells as engine_cells
from repro.engine.cells import CellSpec, WorkloadBundle, run_cell
from repro.engine.fingerprint import fingerprint
from repro.errors import BoltError, ReproError
from repro.tune import (
    TuneConfig,
    TunedPolicy,
    apply_policy,
    default_space,
    load_policy,
    policy_from_result,
    policy_options,
    publish_tune_rows,
    run_search,
    save_policy,
    small_space,
)
from repro.tune.search import load_tune_stats, persist_tune_stats
from repro.tune.space import ParamSpace


def _register_mini(small_server, small_inputs) -> WorkloadBundle:
    bundle = WorkloadBundle(
        name="mini",
        workload=small_server,
        inputs=dict(small_inputs),
        eval_inputs=list(small_inputs),
    )
    engine_cells.register_bundle("mini", bundle)
    return bundle


def _mini_config(**overrides) -> TuneConfig:
    defaults = dict(
        workload="mini",
        seed=7,
        n_random=4,
        beam_width=2,
        budgets=(80, 160),
        jobs=1,
    )
    defaults.update(overrides)
    return TuneConfig(**defaults)


# ----------------------------------------------------------------------
# ParamSpace
# ----------------------------------------------------------------------


class TestParamSpace:
    def test_axes_must_be_bolt_options_fields(self):
        with pytest.raises(ReproError, match="not a BoltOptions field"):
            ParamSpace(axes=(("no_such_knob", (1, 2)),))

    def test_duplicate_and_empty_axes_rejected(self):
        with pytest.raises(ReproError, match="appears twice"):
            ParamSpace(axes=(("layout", ("bolt",)), ("layout", ("stitch",))))
        with pytest.raises(ReproError, match="no values"):
            ParamSpace(axes=(("layout", ()),))

    def test_default_matches_plain_bolt_options(self):
        space = default_space()
        base = BoltOptions()
        for name, value in space.default():
            assert getattr(base, name) == value

    def test_grid_size_and_determinism(self):
        space = small_space()
        grid = list(space.grid())
        assert len(grid) == space.size == 8
        assert grid == list(space.grid())
        assert len(set(grid)) == 8

    def test_sample_is_seed_deterministic(self):
        space = default_space()
        a = [space.sample(random.Random(3)) for _ in range(5)]
        b = [space.sample(random.Random(3)) for _ in range(5)]
        assert a == b

    def test_neighbors_are_single_axis_mutations(self):
        space = small_space()
        origin = space.default()
        neighbors = space.neighbors(origin)
        # one per alternative value on each axis
        assert len(neighbors) == sum(len(v) - 1 for _, v in space.axes)
        for n in neighbors:
            diffs = [k for (k, va), (_k, vb) in zip(origin, n) if va != vb]
            assert len(diffs) == 1

    def test_candidates_build_valid_bolt_options(self):
        for candidate in small_space().grid():
            options = BoltOptions(**dict(candidate))
            assert isinstance(options, BoltOptions)


# ----------------------------------------------------------------------
# tune cells
# ----------------------------------------------------------------------


class TestTuneCells:
    def test_cell_ids_distinguish_candidates_and_budgets(self):
        a = CellSpec("tune", "mini", "readish", transactions=80,
                     tune_params=(("layout", "stitch"),))
        b = CellSpec("tune", "mini", "readish", transactions=80,
                     tune_params=(("layout", "bolt"),))
        c = CellSpec("tune", "mini", "readish", transactions=160,
                     tune_params=(("layout", "stitch"),))
        assert len({a.cell_id, b.cell_id, c.cell_id}) == 3

    def test_tune_cell_result_cached_and_stable(
        self, fresh_engine, small_server, small_inputs
    ):
        _register_mini(small_server, small_inputs)
        spec = CellSpec("tune", "mini", "readish", transactions=80,
                        tune_params=(("huge_pages", True), ("layout", "stitch")))
        first = run_cell(spec)
        again = run_cell(spec)
        assert first.ipc == again.ipc
        assert first.params == spec.tune_params
        assert first.ipc > 0 and first.itlb_mpki >= 0

    def test_single_shot_workload_measures_to_halt(self, fresh_engine):
        spec = CellSpec("tune", "clangbuild", "src0", transactions=60)
        result = run_cell(spec)
        assert result.ipc > 0
        assert result.tps == 0.0  # single-shot: no steady-state throughput


# ----------------------------------------------------------------------
# the staged search
# ----------------------------------------------------------------------


class TestSearch:
    def test_same_seed_warm_cache_identical_winner(
        self, fresh_engine, small_server, small_inputs
    ):
        """Acceptance: replaying the search against a warm cache reproduces
        the same winner, same scores, and computes zero new cells."""
        _register_mini(small_server, small_inputs)
        config = _mini_config()
        space = small_space()
        cold = run_search(space, config)
        warm = run_search(space, config)
        assert warm.winner == cold.winner
        assert warm.winner_ipc == cold.winner_ipc
        assert warm.evaluations == cold.evaluations
        assert fingerprint(warm.winner) == fingerprint(cold.winner)
        assert cold.computed > 0
        assert warm.computed == 0
        assert warm.cache_hits == warm.cells

    def test_jobs_invariance(self, fresh_engine, small_server, small_inputs):
        """Acceptance: successive-halving promotion is stable under
        scheduler parallelism — jobs=1 and jobs=4 pick the same winner
        from identical evaluations."""
        _register_mini(small_server, small_inputs)
        space = small_space()
        serial = run_search(space, _mini_config(jobs=1))
        engine_cells.reset()
        _register_mini(small_server, small_inputs)
        parallel = run_search(space, _mini_config(jobs=4))
        assert parallel.winner == serial.winner
        assert parallel.evaluations == serial.evaluations

    def test_default_always_scored_at_final_budget(
        self, fresh_engine, small_server, small_inputs
    ):
        _register_mini(small_server, small_inputs)
        space = small_space()
        result = run_search(space, _mini_config())
        default = dict(space.default())
        final = result.stages[-1].budget
        assert any(
            e["params"] == default and e["budget"] == final
            for e in result.evaluations
        )
        assert result.default_ipc > 0
        assert result.winner_ipc >= result.default_ipc

    def test_exhaustive_covers_grid_and_skips_beam(
        self, fresh_engine, small_server, small_inputs
    ):
        _register_mini(small_server, small_inputs)
        space = small_space()
        result = run_search(space, _mini_config(exhaustive=True))
        assert result.candidates == space.size
        assert all(s.stage != "beam" for s in result.stages)

    def test_seed_changes_tie_breaks_not_validity(
        self, fresh_engine, small_server, small_inputs
    ):
        _register_mini(small_server, small_inputs)
        space = small_space()
        result = run_search(space, _mini_config(seed=99))
        assert dict(result.winner).keys() == dict(space.default()).keys()

    def test_unknown_input_rejected(self, fresh_engine, small_server, small_inputs):
        _register_mini(small_server, small_inputs)
        with pytest.raises(ReproError, match="unknown input"):
            run_search(small_space(), _mini_config(input_name="nope"))

    def test_empty_budgets_rejected(self, fresh_engine, small_server, small_inputs):
        _register_mini(small_server, small_inputs)
        with pytest.raises(ReproError, match="budgets"):
            run_search(small_space(), _mini_config(budgets=()))

    def test_publish_tune_rows_exports_bench_metrics(
        self, fresh_engine, small_server, small_inputs
    ):
        from repro.obs import metrics as _metrics

        _register_mini(small_server, small_inputs)
        result = run_search(small_space(), _mini_config())
        registry = _metrics.install()
        try:
            rows = publish_tune_rows([result])
        finally:
            _metrics.uninstall()
        assert rows[0].workload == "mini"
        assert rows[0].speedup == pytest.approx(result.speedup, abs=1e-3)
        snap = registry.snapshot()
        assert "bench.tune.best_ipc" in snap
        assert "bench.tune.cache_hit_rate" in snap
        assert snap.value("bench.tune.best_ipc", workload="mini") == pytest.approx(
            round(result.winner_ipc, 4)
        )

    def test_tune_stats_persisted_to_disk_cache(
        self, small_server, small_inputs, tmp_path
    ):
        from repro.engine.store import configure

        configure(cache_dir=str(tmp_path))
        try:
            _register_mini(small_server, small_inputs)
            result = run_search(small_space(), _mini_config())
            doc = load_tune_stats(str(tmp_path))
            assert doc is not None
            assert doc["workload"] == "mini"
            assert [s["stage"] for s in doc["stages"]] == [
                s.stage for s in result.stages
            ]
            assert persist_tune_stats(result) is not None
        finally:
            engine_cells.reset()


# ----------------------------------------------------------------------
# TunedPolicy artifacts
# ----------------------------------------------------------------------


class TestPolicy:
    def _result(self, fresh_engine, small_server, small_inputs):
        _register_mini(small_server, small_inputs)
        return run_search(small_space(), _mini_config())

    def test_roundtrip(self, fresh_engine, small_server, small_inputs, tmp_path):
        result = self._result(fresh_engine, small_server, small_inputs)
        policy = policy_from_result(result)
        path = tmp_path / "policy.json"
        save_policy(policy, str(path))
        loaded = load_policy(str(path))
        assert loaded.params == dict(result.winner)
        assert loaded.workload == "mini"
        assert policy_options(loaded) == BoltOptions(**dict(result.winner))

    def test_load_missing_file_is_clear_error(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read tuned policy"):
            load_policy(str(tmp_path / "absent.json"))

    def test_load_rejects_unknown_params(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "version": 1, "workload": "x", "params": {"warp_drive": True},
        }))
        with pytest.raises(ReproError, match="unknown BoltOptions params"):
            load_policy(str(path))

    def test_load_rejects_bad_version_and_shape(self, tmp_path):
        path = tmp_path / "v9.json"
        path.write_text(json.dumps({
            "version": 9, "workload": "x", "params": {"layout": "stitch"},
        }))
        with pytest.raises(ReproError, match="unsupported version"):
            load_policy(str(path))
        path.write_text("[1, 2]")
        with pytest.raises(ReproError, match="JSON object"):
            load_policy(str(path))
        path.write_text("not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_policy(str(path))

    def test_apply_policy_folds_into_fleet_config(self):
        from repro.fleet.controller import FleetConfig

        policy = TunedPolicy(
            workload="memcached",
            params={"layout": "stitch", "huge_pages": True, "stitch_order": "density"},
        )
        config = apply_policy(FleetConfig(), policy)
        assert config.layout == "stitch"
        assert config.huge_pages is True
        effective = config.effective_bolt_options()
        assert effective == policy_options(policy)
        assert effective.stitch_order == "density"


# ----------------------------------------------------------------------
# scenario TOML tuned policies
# ----------------------------------------------------------------------


class TestScenarioTunedPolicy:
    def test_missing_policy_file_fails_at_parse_time(self, tmp_path):
        from repro.fleet.scenario import parse_scenario

        text = """
        [[tenants]]
        name = "edge"
        workload = "memcached"
        policy = "tuned:absent.json"
        """
        with pytest.raises(ReproError, match="does not exist"):
            parse_scenario(text, base_dir=str(tmp_path))

    def test_unknown_policy_string_rejected(self):
        from repro.fleet.scenario import parse_scenario

        text = """
        [[tenants]]
        name = "edge"
        workload = "memcached"
        policy = "yolo"
        """
        with pytest.raises(ReproError, match="policy must be"):
            parse_scenario(text)

    def test_tuned_policy_resolved_relative_to_scenario(self, tmp_path):
        from repro.fleet.scenario import parse_scenario

        save_policy(
            TunedPolicy(workload="memcached",
                        params={"layout": "stitch", "huge_pages": True}),
            str(tmp_path / "mem.json"),
        )
        text = """
        [[tenants]]
        name = "edge"
        workload = "memcached"
        policy = "tuned:mem.json"
        """
        scenario = parse_scenario(text, base_dir=str(tmp_path))
        config = scenario.tenants[0].config
        assert config.drain is True
        assert config.layout == "stitch"
        assert config.huge_pages is True
        assert config.effective_bolt_options().layout == "stitch"


# ----------------------------------------------------------------------
# the promoted stitch knobs stay byte-identical at defaults
# ----------------------------------------------------------------------


class TestStitchKnobs:
    def _bolt(self, small_server, small_inputs, options):
        from repro.harness.runner import collect_profile, link_original

        original = link_original(small_server)
        profile, _ = collect_profile(small_server, small_inputs["readish"], seconds=0.3)
        return run_bolt(small_server.program, original, profile, options=options)

    def test_default_knobs_byte_identical(
        self, fresh_engine, small_server, small_inputs
    ):
        """Explicit defaults must reproduce the implicit-default binary."""
        implicit = self._bolt(small_server, small_inputs,
                              BoltOptions(layout="stitch"))
        explicit = self._bolt(
            small_server, small_inputs,
            BoltOptions(layout="stitch", max_splice_bytes=4096,
                        stitch_order="weight", order_seed=0),
        )
        for name, section in implicit.binary.sections.items():
            assert explicit.binary.sections[name].data == section.data, name

    def test_stitch_order_variants_produce_valid_layouts(
        self, fresh_engine, small_server, small_inputs
    ):
        for order in ("weight", "density", "size"):
            result = self._bolt(
                small_server, small_inputs,
                BoltOptions(layout="stitch", stitch_order=order),
            )
            assert result.stitch_stats.chains >= 1, order

    def test_unknown_stitch_order_rejected(
        self, fresh_engine, small_server, small_inputs
    ):
        with pytest.raises(BoltError, match="unknown stitch order"):
            self._bolt(small_server, small_inputs,
                       BoltOptions(layout="stitch", stitch_order="alphabetical"))

    def test_order_seed_zero_is_identity(self):
        from repro.bolt.func_reorder import c3_order, order_tie_key

        assert order_tie_key("f", 0) == "f"
        assert order_tie_key("f", 1) != "f"
        assert order_tie_key("f", 1) == order_tie_key("f", 1)
        hotness = {"a": 10, "b": 10, "c": 5}
        edges = {("a", "c"): 3}
        assert c3_order(hotness, edges) == c3_order(hotness, edges, seed=0)
        seeded = c3_order(hotness, edges, seed=2)
        assert sorted(seeded) == sorted(hotness)
