"""Tests for Batch Accelerator Mode."""

import pytest

from repro.binary.linker import link_program
from repro.core.bam import BamConfig, BatchAcceleratorMode
from repro.errors import WorkloadError
from repro.workloads.clangbuild import ClangBuildWorkload, N_SOURCE_CLASSES
from repro.workloads.generator import build_workload
from tests.conftest import small_server_params


@pytest.fixture(scope="module")
def small_compiler():
    """A fast single-shot compiler-like workload."""
    wl = build_workload(
        small_server_params(
            name="cc_like",
            single_shot=True,
            work_items=6,
            n_threads=1,
            steps_per_op=(6, 10),
        )
    )
    # single-shot compilers identify sources by class; reuse generator inputs
    return wl


@pytest.fixture(scope="module")
def bam(small_compiler, monkeypatch_module=None):
    binary = link_program(small_compiler.program, options=small_compiler.options)
    config = BamConfig(target_binary="cc_like", profiles_needed=2, perf_period=300)
    mode = BatchAcceleratorMode(small_compiler, binary, config, seed=5)

    # route source inputs through the small compiler's own make_input
    def source_input(source_class: int):
        theta = 0.2 + 0.1 * source_class
        return small_compiler.make_input(
            f"src{source_class}", theta, {"read_op": 2.0, "write_op": 1.0}
        )

    mode._source_input = source_input  # type: ignore[assignment]
    return mode


@pytest.fixture(scope="module")
def build(small_compiler):
    return ClangBuildWorkload(compiler=small_compiler, n_invocations=32, parallel_jobs=4)


class TestBamConfig:
    def test_target_name_checked(self, small_compiler):
        binary = link_program(small_compiler.program, options=small_compiler.options)
        with pytest.raises(WorkloadError):
            BatchAcceleratorMode(
                small_compiler, binary, BamConfig(target_binary="wrong")
            )


class TestBamExecution:
    def test_invocation_runs_to_completion(self, bam):
        seconds, session = bam.run_invocation(
            bam.original, bam._source_input(0), profiled=False
        )
        assert seconds > 0
        assert session is None

    def test_profiled_invocation_collects_samples(self, bam):
        _seconds, session = bam.run_invocation(
            bam.original, bam._source_input(0), profiled=True
        )
        assert session is not None
        assert session.sample_count > 0

    def test_collect_profiles_aggregates(self, bam):
        profile, records = bam.collect_profiles(2)
        assert not profile.is_empty()
        assert records > 0

    def test_bolt_from_profiles(self, bam):
        result, seconds = bam.bolt_from_profiles(2)
        assert result.binary.bolted
        assert seconds > 0


class TestBamBuild:
    def test_build_modes_in_order(self, bam, build):
        report = bam.run_build(build)
        modes = [r.mode for r in report.invocations]
        assert modes[:2] == ["profiled", "profiled"]
        assert "optimized" in modes
        # original fills the gap while BOLT runs
        first_opt = modes.index("optimized")
        assert all(m != "optimized" for m in modes[:first_opt])

    def test_build_timeline_consistent(self, bam, build):
        report = bam.run_build(build)
        assert report.total_seconds == pytest.approx(
            max(r.end_seconds for r in report.invocations)
        )
        assert report.bolt_ready_at > report.bolt_started_at

    def test_optimized_runs_after_bolt_ready(self, bam, build):
        report = bam.run_build(build)
        for rec in report.invocations:
            if rec.mode == "optimized":
                assert rec.start_seconds >= report.bolt_ready_at

    def test_bam_beats_baseline_for_long_builds(self, bam, small_compiler):
        long_build = ClangBuildWorkload(
            compiler=small_compiler, n_invocations=60, parallel_jobs=4
        )
        baseline = bam.baseline_build_seconds(long_build)
        accelerated = bam.run_build(long_build).total_seconds
        assert accelerated < baseline

    def test_ideal_is_lower_bound(self, bam, build):
        ideal = bam.ideal_build_seconds(build, n_profiles=2)
        accelerated = bam.run_build(build).total_seconds
        assert ideal <= accelerated * 1.001

    def test_mode_counts_sum(self, bam, build):
        report = bam.run_build(build)
        assert sum(report.mode_counts().values()) == build.n_invocations

    def test_too_many_profiles_delay_optimization(self, bam, small_compiler, build):
        """More profiling -> later BOLT -> fewer optimized invocations."""
        few = bam.run_build(build)
        config = BamConfig(target_binary="cc_like", profiles_needed=10, perf_period=300)
        greedy = BatchAcceleratorMode(small_compiler, bam.original, config, seed=5)
        greedy._source_input = bam._source_input  # type: ignore[assignment]
        many = greedy.run_build(build)
        assert many.optimized_invocations <= few.optimized_invocations
