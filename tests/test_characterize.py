"""Tests for workload characterization, including the core front-end claim:
BOLT shrinks the dynamic hot footprint below the L1i/iTLB capacities."""

import pytest

from repro.bolt.optimizer import run_bolt
from repro.harness.runner import launch, link_original
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile
from repro.vm.process import Process
from repro.workloads.characterize import (
    characterize_binary,
    measure_hot_footprint,
)


class TestStatic:
    def test_tiny_binary_counts(self, tiny):
        stats = characterize_binary(tiny.binary)
        assert stats.functions == len(tiny.binary.functions)
        assert stats.vtables == 2
        assert stats.vtable_slots == 2
        assert stats.fp_slots == 4
        assert stats.jump_tables == 0
        assert stats.direct_call_sites >= 3  # main calls helper2+switchy, Virt::m call
        assert 0 < stats.text_mib < 0.01

    def test_jump_table_flavour(self, tiny_with_jump_tables):
        stats = characterize_binary(tiny_with_jump_tables.binary)
        assert stats.jump_tables == 1


class TestDynamicFootprint:
    def test_footprint_counts_consistent(self, small_server, small_inputs):
        proc = launch(small_server, small_inputs["readish"], seed=3, with_agent=False)
        proc.run(max_transactions=100)
        fp = measure_hot_footprint(proc, transactions=200)
        assert 0 < fp.functions_touched <= len(small_server.program.functions)
        assert fp.blocks_touched >= fp.functions_touched
        assert fp.hot_lines * 64 >= fp.hot_bytes * 0.5  # lines cover the bytes
        assert fp.hot_pages <= fp.hot_lines

    def test_write_mix_touches_different_code(self, small_server, small_inputs):
        pr = launch(small_server, small_inputs["readish"], seed=3, with_agent=False)
        pw = launch(small_server, small_inputs["writish"], seed=3, with_agent=False)
        pr.run(max_transactions=100)
        pw.run(max_transactions=100)
        fr = measure_hot_footprint(pr, transactions=200)
        fw = measure_hot_footprint(pw, transactions=200)
        assert fr.blocks_touched != fw.blocks_touched

    def test_bolt_shrinks_line_and_page_footprint(self, small_server, small_inputs):
        """The core front-end mechanism, measured directly."""
        spec = small_inputs["readish"]
        binary = link_original(small_server)
        p0 = launch(small_server, spec, seed=3, with_agent=False)
        p0.run(max_transactions=150)
        before = measure_hot_footprint(p0, transactions=250)

        proc = launch(small_server, spec, seed=3, with_agent=False)
        proc.run(max_transactions=150)
        session = PerfSession(period=400, overhead=0.0)
        session.attach(proc)
        proc.run(max_instructions=80_000)
        session.detach()
        profile, _ = extract_profile(session.samples, binary)
        result = run_bolt(
            small_server.program, binary, profile,
            compiler_options=small_server.options,
        )
        pb = Process(
            result.binary, small_server.program, spec, n_threads=2, seed=3
        )
        pb.run(max_transactions=150)
        after = measure_hot_footprint(pb, transactions=250)

        assert after.hot_lines < before.hot_lines
        assert after.hot_pages <= before.hot_pages
