"""Structural tests for the four paper workloads and the clang build.

Full pipeline measurements on these live in benchmarks/; here we verify the
Table-I-style structure, input families and basic executability.
"""

import pytest

from repro.binary.linker import link_program
from repro.vm.process import Process


@pytest.fixture(scope="module")
def mysql():
    from repro.workloads.mysql import mysql_inputs, mysql_like

    wl = mysql_like()
    return wl, mysql_inputs(wl)


@pytest.fixture(scope="module")
def verilator():
    from repro.workloads.verilator import verilator_inputs, verilator_like

    wl = verilator_like()
    return wl, verilator_inputs(wl)


class TestMysqlLike:
    def test_input_family_matches_sysbench(self, mysql):
        _wl, inputs = mysql
        assert "oltp_read_only" in inputs
        assert "oltp_insert" in inputs
        assert len(inputs) == 8

    def test_scale_relations_vs_table1(self, mysql):
        wl, _ = mysql
        binary = link_program(wl.program, options=wl.options)
        # Table I relations (scaled): >1000 functions, hundreds of KiB text,
        # tens of v-tables, non-trivial fp slots
        assert len(binary.functions) > 1000
        assert binary.text_size() > 200 * 1024
        assert len(binary.vtables) >= 30
        assert binary.fp_slot_count > 0

    def test_ocolos_compatible_options(self, mysql):
        wl, _ = mysql
        assert not wl.options.jump_tables  # -fno-jump-tables
        assert wl.options.instrument_fp

    def test_writeness_axis_orders_biases(self, mysql):
        wl, inputs = mysql
        ro = inputs["oltp_read_only"]
        ins = inputs["oltp_insert"]
        differing = sum(
            1
            for site in wl.branch_sites
            if abs(ro.branch_bias[site] - ins.branch_bias[site]) > 0.5
        )
        assert differing > len(wl.branch_sites) * 0.2

    def test_runs_briefly(self, mysql):
        wl, inputs = mysql
        binary = link_program(wl.program, options=wl.options)
        proc = Process(binary, wl.program, inputs["oltp_read_only"], n_threads=2, seed=1)
        delta = proc.run(max_transactions=30)
        assert delta.transactions >= 30


class TestMongodbLike:
    def test_inputs_and_anomaly_knobs(self):
        from repro.workloads.mongodb import mongodb_inputs, mongodb_like

        wl = mongodb_like()
        inputs = mongodb_inputs(wl)
        assert set(inputs) == {
            "read_update",
            "read95_insert5",
            "scan95_insert5",
            "read_modify_write",
        }
        assert inputs["scan95_insert5"].dram_service_scale < 1.0
        assert inputs["read_update"].dram_service_scale == 1.0

    def test_larger_than_mysql(self):
        from repro.workloads.mongodb import mongodb_like
        from repro.workloads.mysql import mysql_like

        mongo = mongodb_like()
        mysql = mysql_like()
        assert len(mongo.program.functions) > len(mysql.program.functions)
        assert len(mongo.program.vtables) > len(mysql.program.vtables)


class TestMemcachedLike:
    def test_no_vtables_plain_c(self):
        from repro.workloads.memcached import memcached_like

        wl = memcached_like()
        assert len(wl.program.vtables) == 0
        assert wl.dispatch_kind == "switch"

    def test_tiny_footprint(self):
        from repro.workloads.memcached import memcached_like

        wl = memcached_like()
        binary = link_program(wl.program, options=wl.options)
        # hot code fits the 32 KiB L1i: whole text is small
        assert binary.text_size() < 64 * 1024

    def test_runs(self):
        from repro.workloads.memcached import memcached_inputs, memcached_like

        wl = memcached_like()
        inputs = memcached_inputs(wl)
        binary = link_program(wl.program, options=wl.options)
        proc = Process(binary, wl.program, inputs["set10_get90"], n_threads=2, seed=1)
        assert proc.run(max_transactions=50).transactions >= 50


class TestVerilatorLike:
    def test_table1_structure(self, verilator):
        wl, _ = verilator
        binary = link_program(wl.program, options=wl.options)
        assert len(binary.vtables) == 10  # Table I
        assert 380 <= len(binary.functions) <= 450  # ~406 in Table I

    def test_single_threaded(self, verilator):
        wl, _ = verilator
        assert wl.params.n_threads == 1

    def test_three_benchmark_inputs(self, verilator):
        _wl, inputs = verilator
        assert set(inputs) == {"dhrystone", "median", "vvadd"}

    def test_inputs_flip_module_branches(self, verilator):
        wl, inputs = verilator
        dhry = inputs["dhrystone"]
        vvadd = inputs["vvadd"]
        flipped = sum(
            1
            for site in wl.branch_sites
            if (dhry.branch_bias[site] - 0.5) * (vvadd.branch_bias[site] - 0.5) < 0
        )
        assert flipped > len(wl.branch_sites) * 0.15

    def test_runs_single_cycle_txns(self, verilator):
        wl, inputs = verilator
        binary = link_program(wl.program, options=wl.options)
        proc = Process(binary, wl.program, inputs["median"], n_threads=1, seed=1)
        delta = proc.run(max_transactions=10)
        assert delta.transactions >= 10
        # one simulated chip cycle is a substantial amount of work
        assert delta.instructions / delta.transactions > 500


class TestClangBuild:
    def test_compiler_is_single_shot(self):
        from repro.workloads.clangbuild import clang_like_compiler

        wl = clang_like_compiler()
        assert wl.params.single_shot
        assert wl.params.n_threads == 1

    def test_source_classes_cycle(self):
        from repro.workloads.clangbuild import (
            N_SOURCE_CLASSES,
            clang_build,
            source_file_input,
        )

        build = clang_build(n_invocations=12)
        wl = build.compiler
        a = source_file_input(wl, 0)
        b = source_file_input(wl, N_SOURCE_CLASSES)  # same class
        c = source_file_input(wl, 1)
        assert a.branch_bias == b.branch_bias
        assert a.branch_bias != c.branch_bias

    def test_compiler_terminates(self):
        from repro.workloads.clangbuild import clang_like_compiler, source_file_input

        wl = clang_like_compiler()
        binary = link_program(wl.program, options=wl.options)
        proc = Process(binary, wl.program, source_file_input(wl, 0), n_threads=1, seed=1)
        delta = proc.run(max_instructions=50_000_000)
        assert not proc.runnable_threads()
        assert delta.transactions == wl.params.work_items
