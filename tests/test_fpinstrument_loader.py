"""Tests for the fp-instrumentation pass, the loader, and the fp-invariant
checker."""

import pytest

from repro.binary.linker import link_program
from repro.binary.loader import load_binary
from repro.compiler.codegen import CompilerOptions
from repro.compiler.fpinstrument import count_creation_sites, instrument_function_pointers
from repro.compiler.ir import IRFunction, Program, Ret
from repro.core.funcptr_map import require_fp_invariant
from repro.errors import LoaderError, ReplacementError
from repro.isa.instructions import alu, mkfp
from repro.vm.address_space import AddressSpace


def fp_program():
    prog = Program(name="fp", entry="main", fp_slot_count=2)
    leaf = IRFunction("leaf")
    lb = leaf.new_block()
    lb.body = [alu()]
    lb.terminator = Ret()
    prog.add_function(leaf)
    main = IRFunction("main")
    m0 = main.new_block()
    m0.body = [mkfp("leaf", 0), alu(), mkfp("leaf", 1)]
    m0.terminator = Ret()
    prog.add_function(main)
    return prog


class TestInstrumentationPass:
    def test_counts_sites(self):
        prog = fp_program()
        assert count_creation_sites(prog) == 2

    def test_marks_all_sites(self):
        prog = fp_program()
        assert instrument_function_pointers(prog) == 2
        for func in prog.functions.values():
            for block in func.blocks:
                for insn in block.body:
                    if insn.op.name == "MKFP":
                        assert insn.wrapped

    def test_idempotent(self):
        prog = fp_program()
        instrument_function_pointers(prog)
        assert instrument_function_pointers(prog) == 0

    def test_compile_option_equivalent(self):
        """instrument_fp=True at compile time has the same effect as the
        pass: every encoded MKFP carries the wrapped flag."""
        from repro.isa.disassembler import disassemble_range
        from repro.isa.instructions import Opcode

        prog = fp_program()
        binary = link_program(prog, options=CompilerOptions(instrument_fp=True))
        text = binary.sections[".text"]
        reader = lambda a, n: text.data[a - text.addr : a - text.addr + n]
        wrapped_flags = [
            insn.wrapped
            for info in binary.functions.values()
            for block in info.blocks
            for _a, insn in disassemble_range(reader, block.addr, block.addr + block.size)
            if insn.op == Opcode.MKFP
        ]
        assert wrapped_flags and all(wrapped_flags)


class TestLoader:
    def test_maps_all_sections(self, tiny):
        space = AddressSpace()
        load_binary(tiny.binary, space)
        for section in tiny.binary.sections.values():
            assert space.read(section.addr, len(section.data)) == section.data
            assert space.region_at(section.addr).executable == section.executable

    def test_rejects_codeless_binary(self):
        from repro.binary.binaryfile import Binary, Section

        binary = Binary(name="empty")
        binary.sections[".data"] = Section(name=".data", addr=0x1000, data=b"\0" * 8)
        with pytest.raises(LoaderError):
            load_binary(binary, AddressSpace())

    def test_double_load_conflicts(self, tiny):
        space = AddressSpace()
        load_binary(tiny.binary, space)
        with pytest.raises(LoaderError):
            load_binary(tiny.binary, space)


class TestFpInvariantChecker:
    def test_clean_process_passes(self, tiny):
        proc = tiny.process()
        proc.run(max_transactions=20)
        require_fp_invariant(proc)

    def test_detects_generation_pointer(self, tiny_fresh):
        proc = tiny_fresh.process()
        # simulate a missed instrumentation: a slot pointing into a
        # BOLT-generation address band
        proc.address_space.write_u64(
            tiny_fresh.binary.fp_slot_addr(2), 0x0200_0040
        )
        with pytest.raises(ReplacementError):
            require_fp_invariant(proc)
