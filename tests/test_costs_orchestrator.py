"""Tests for the cost model and the end-to-end orchestrator."""

import pytest

from repro.core.costs import (
    CostModel,
    FixedCosts,
    break_even_seconds,
)
from repro.core.orchestrator import Ocolos, OcolosConfig


class TestCostModel:
    def test_monotone_in_work(self):
        model = CostModel()
        assert model.perf2bolt_seconds(1000) < model.perf2bolt_seconds(100_000)
        assert model.llvm_bolt_seconds(10, 1000) < model.llvm_bolt_seconds(1000, 1000)
        assert model.replacement_seconds(10, 1000) < model.replacement_seconds(10_000, 1000)

    def test_scale_multiplies_code_driven_parts_only(self):
        small = CostModel(workload_scale=1.0)
        big = CostModel(workload_scale=16.0)
        # perf2bolt is duration-driven, not code-size-driven (Table II shows
        # MySQL and the 2x-bigger MongoDB costing the same for 60 s profiles)
        assert big.perf2bolt_seconds(1000) == small.perf2bolt_seconds(1000)
        assert big.llvm_bolt_seconds(100, 1000) > small.llvm_bolt_seconds(100, 1000)
        assert big.replacement_seconds(100, 1000) > small.replacement_seconds(100, 1000)

    def test_fixed_costs_aggregate(self):
        model = CostModel()
        costs = model.fixed_costs(
            records=10_000,
            hot_functions=300,
            emitted_bytes=64_000,
            pointer_writes=2_000,
            bytes_copied=64_000,
        )
        assert costs.perf2bolt_seconds > 0
        assert costs.llvm_bolt_seconds > 0
        assert costs.replacement_seconds > 0
        assert costs.background_seconds == pytest.approx(
            costs.perf2bolt_seconds + costs.llvm_bolt_seconds
        )

    def test_table2_ordering_structure(self):
        """More hot functions -> more BOLT time (the MySQL-vs-Mongo ordering
        in Table II: Mongo's 2364 hot functions cost more than MySQL's 964)."""
        model = CostModel(workload_scale=16.0)
        mysql_like = model.llvm_bolt_seconds(964 // 16, 60_000)
        mongo_like = model.llvm_bolt_seconds(2364 // 16, 120_000)
        assert mongo_like > mysql_like

    def test_break_even_formula(self):
        # a=0.5, s=10s, b=0.25 -> 20s
        assert break_even_seconds(0.5, 10.0, 0.25) == pytest.approx(20.0)

    def test_break_even_no_speedup(self):
        assert break_even_seconds(0.5, 10.0, 0.0) == float("inf")


class TestOrchestrator:
    @pytest.fixture()
    def quick_config(self):
        return OcolosConfig(
            profile_seconds=0.02,
            perf_period=400,
            background_sim_cap_seconds=0.05,
        )

    def test_optimize_once_full_cycle(self, tiny_fresh, quick_config):
        proc = tiny_fresh.process()
        proc.run(max_transactions=50)
        ocolos = Ocolos(
            proc, tiny_fresh.binary,
            compiler_options=tiny_fresh.options, config=quick_config,
        )
        report = ocolos.optimize_once()
        assert not report.skipped
        assert report.generation == 1
        assert report.samples > 0
        assert report.replacement is not None
        assert report.costs.replacement_seconds > 0
        assert ocolos.current_binary.bolted

    def test_stage1_check_can_skip(self, tiny_fresh, quick_config):
        quick_config.check_frontend_first = True
        quick_config.frontend_threshold = 101.0  # impossible
        proc = tiny_fresh.process()
        proc.run(max_transactions=50)
        ocolos = Ocolos(
            proc, tiny_fresh.binary,
            compiler_options=tiny_fresh.options, config=quick_config,
        )
        report = ocolos.optimize_once()
        assert report.skipped
        assert proc.replacement_generation == 0

    def test_second_optimize_is_continuous(self, tiny_fresh, quick_config):
        proc = tiny_fresh.process()
        proc.run(max_transactions=50)
        ocolos = Ocolos(
            proc, tiny_fresh.binary,
            compiler_options=tiny_fresh.options, config=quick_config,
        )
        r1 = ocolos.optimize_once()
        proc.run(max_transactions=100)
        r2 = ocolos.optimize_once()
        assert r1.replacement is not None and r1.continuous is None
        assert r2.continuous is not None and r2.replacement is None
        assert proc.replacement_generation == 2
        before = proc.counters_total().transactions
        proc.run(max_transactions=200)
        assert proc.counters_total().transactions >= before + 200

    def test_reports_accumulate(self, tiny_fresh, quick_config):
        proc = tiny_fresh.process()
        proc.run(max_transactions=50)
        ocolos = Ocolos(
            proc, tiny_fresh.binary,
            compiler_options=tiny_fresh.options, config=quick_config,
        )
        ocolos.optimize_once()
        proc.run(max_transactions=50)
        ocolos.optimize_once()
        assert len(ocolos.reports) == 2

    def test_background_contention_charged(self, tiny_fresh, quick_config):
        proc = tiny_fresh.process()
        proc.run(max_transactions=50)
        idle_before = proc.counters_total().cyc_idle
        ocolos = Ocolos(
            proc, tiny_fresh.binary,
            compiler_options=tiny_fresh.options, config=quick_config,
        )
        ocolos.optimize_once()
        assert proc.counters_total().cyc_idle > idle_before
