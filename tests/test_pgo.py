"""Tests for the clang-PGO model: lossy mapping and layout quality ordering."""

import pytest

from repro.bolt.optimizer import run_bolt
from repro.compiler.pgo import compile_with_pgo, degrade_profile, pgo_layout
from repro.errors import ProfileError
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile
from repro.profiling.profile import BoltProfile
from repro.vm.process import Process


@pytest.fixture(scope="module")
def tiny_profile(tiny):
    proc = tiny.process()
    proc.run(max_transactions=50)
    session = PerfSession(period=300, overhead=0.0)
    session.attach(proc)
    proc.run(max_instructions=80_000)
    session.detach()
    profile, _ = extract_profile(session.samples, tiny.binary)
    return profile


class TestDegradation:
    def test_preserves_structure(self, tiny_profile):
        degraded = degrade_profile(tiny_profile)
        assert set(degraded.block_counts) == set(tiny_profile.block_counts)
        assert set(degraded.branch_edges) == set(tiny_profile.branch_edges)
        assert degraded.call_edges == tiny_profile.call_edges

    def test_changes_edge_weights(self, tiny_profile):
        degraded = degrade_profile(tiny_profile, fidelity=0.3)
        changed = sum(
            1
            for k in tiny_profile.branch_edges
            if degraded.branch_edges[k] != tiny_profile.branch_edges[k]
        )
        assert changed > 0

    def test_full_fidelity_changes_less(self, tiny_profile):
        near = degrade_profile(tiny_profile, fidelity=0.98)
        far = degrade_profile(tiny_profile, fidelity=0.1)

        def distance(p):
            return sum(
                abs(p.branch_edges[k] - tiny_profile.branch_edges[k])
                for k in tiny_profile.branch_edges
            )

        assert distance(near) < distance(far)

    def test_deterministic(self, tiny_profile):
        a = degrade_profile(tiny_profile, seed=5)
        b = degrade_profile(tiny_profile, seed=5)
        assert a.branch_edges == b.branch_edges

    def test_counts_smeared_within_groups(self, tiny_profile):
        degraded = degrade_profile(tiny_profile, group=100)  # whole function
        by_func = {}
        for label, count in degraded.block_counts.items():
            func = label.rsplit("#", 1)[0]
            by_func.setdefault(func, set()).add(count)
        # within a giant group all blocks of a function share one count
        assert all(len(v) == 1 for v in by_func.values())


class TestPgoCompile:
    def test_layout_covers_whole_program(self, tiny, tiny_profile):
        layout = pgo_layout(tiny.program, tiny_profile)
        placed = set()
        for section in layout.sections:
            for frag in section.fragments:
                placed.add(frag.function)
        assert placed == set(tiny.program.functions)

    def test_single_text_section(self, tiny, tiny_profile):
        binary = compile_with_pgo(tiny.program, tiny_profile, tiny.options)
        assert not binary.bolted
        code = binary.code_sections()
        assert len(code) == 1 and code[0].name == ".text"

    def test_empty_profile_rejected(self, tiny):
        with pytest.raises(ProfileError):
            pgo_layout(tiny.program, BoltProfile())

    def test_pgo_binary_runs(self, tiny, tiny_profile):
        binary = compile_with_pgo(tiny.program, tiny_profile, tiny.options)
        proc = Process(binary, tiny.program, tiny.input_spec(), n_threads=2, seed=9)
        delta = proc.run(max_transactions=200)
        assert delta.transactions >= 200

    def test_quality_order_bolt_geq_pgo(self, tiny, tiny_profile):
        """With the same oracle profile, BOLT should not lose to PGO (the
        paper's consistent finding)."""
        bolt = run_bolt(tiny.program, tiny.binary, tiny_profile,
                        compiler_options=tiny.options)
        pgo = compile_with_pgo(tiny.program, tiny_profile, tiny.options)
        spec = tiny.input_spec()
        p_bolt = Process(bolt.binary, tiny.program, spec, n_threads=2, seed=9)
        p_pgo = Process(pgo, tiny.program, spec, n_threads=2, seed=9)
        p_bolt.run(max_transactions=150)
        p_pgo.run(max_transactions=150)
        d_bolt = p_bolt.run(max_transactions=400)
        d_pgo = p_pgo.run(max_transactions=400)
        assert p_bolt.throughput_tps(d_bolt) >= p_pgo.throughput_tps(d_pgo) * 0.9
