"""Tests for the Fig 9 classifier and the Fig 1 L1i history."""

import math

import pytest

from repro.analysis.l1i_history import (
    L1I_HISTORY,
    capacity_growth_factor,
    l1i_capacity_table,
)
from repro.analysis.regression import fit_benefit_classifier


class TestClassifier:
    def test_separable_points_classified_perfectly(self):
        # high FE latency + low retiring -> benefits; opposite -> doesn't
        points = [
            (40.0, 10.0, True),
            (35.0, 15.0, True),
            (30.0, 20.0, True),
            (5.0, 40.0, False),
            (8.0, 35.0, False),
            (3.0, 50.0, False),
        ]
        fit = fit_benefit_classifier(points)
        assert fit.accuracy == 1.0

    def test_predict_matches_training(self):
        points = [(40.0, 10.0, True), (5.0, 40.0, False)]
        fit = fit_benefit_classifier(points)
        assert fit.predict(40.0, 10.0)
        assert not fit.predict(5.0, 40.0)

    def test_boundary_is_on_the_line(self):
        points = [
            (40.0, 10.0, True),
            (30.0, 20.0, True),
            (5.0, 40.0, False),
            (8.0, 35.0, False),
        ]
        fit = fit_benefit_classifier(points)
        fe = 20.0
        boundary_ret = fit.boundary_retiring(fe)
        if not math.isnan(boundary_ret):
            w0, w1, w2 = fit.weights
            assert abs(w0 + w1 * fe + w2 * boundary_ret) < 1e-9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_benefit_classifier([])

    def test_single_class_still_fits(self):
        fit = fit_benefit_classifier([(10.0, 10.0, True), (20.0, 5.0, True)])
        assert fit.accuracy == 1.0


class TestL1iHistory:
    def test_intel_literally_flat(self):
        assert capacity_growth_factor("Intel") == 1.0
        sizes = {r[3] for r in l1i_capacity_table("Intel")}
        assert sizes == {32}

    def test_amd_never_grew(self):
        assert capacity_growth_factor("AMD") <= 1.0

    def test_fifteen_year_span(self):
        years = [r[0] for r in L1I_HISTORY]
        assert max(years) - min(years) >= 15

    def test_table_sorted_by_year(self):
        rows = l1i_capacity_table()
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)

    def test_unknown_vendor_rejected(self):
        with pytest.raises(KeyError):
            capacity_growth_factor("VIA")
