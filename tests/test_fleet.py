"""Fleet control plane tests: fault matrix, canary rollback, bit-identity.

Rollouts are deterministic (seeded traffic, virtual time), so the expensive
controller runs are shared module-wide and every assertion on them is exact.
The fault matrix asserts, for each named site, the three contract clauses:
(a) the fleet keeps serving (no loss beyond the faulted node), (b) the
configured retry/backoff or rollback fired, and (c) replica state stays
bit-identical to an unoptimized reference (directly, via the demand-schedule
replay oracle, where the site leaves replicas on original code).
"""

import pytest

from repro.binary.binaryfile import BOLT_TEXT_BASE, RODATA_BASE
from repro.fleet import (
    PERSISTENT,
    FaultPlan,
    FaultSpec,
    FleetConfig,
    FleetController,
    analytic_prediction,
    unoptimized_reference_digests,
)


@pytest.fixture(scope="module")
def fleet_spec(small_server):
    return small_server.make_input("readish", 0.1, {"read_op": 8.0, "scan_op": 1.0})


def run_rollout(workload, spec, *, drain=True, plan=None, **overrides):
    overrides.setdefault("n_replicas", 3)
    config = FleetConfig(drain=drain, **overrides)
    controller = FleetController(workload, spec, config, plan)
    return controller, controller.run(), config


@pytest.fixture(scope="module")
def clean_drain(small_server, fleet_spec):
    return run_rollout(small_server, fleet_spec, drain=True)


@pytest.fixture(scope="module")
def clean_unaware(small_server, fleet_spec):
    return run_rollout(small_server, fleet_spec, drain=False)


@pytest.fixture(scope="module")
def degraded(small_server, fleet_spec):
    """Persistent BOLT crashes exhaust the retry budget: graceful degradation."""
    plan = FaultPlan([FaultSpec("bolt.crash", times=PERSISTENT)])
    return run_rollout(small_server, fleet_spec, drain=False, plan=plan)


def band_regions(process):
    return [
        r for r in process.address_space.regions()
        if BOLT_TEXT_BASE <= r.start < RODATA_BASE
    ]


class TestCleanRollout:
    def test_drain_rollout_optimizes_whole_fleet(self, clean_drain):
        controller, outcome, _cfg = clean_drain
        assert outcome.status == "optimized"
        assert outcome.installs == 3
        assert [r["generation"] for r in outcome.replicas] == [1, 1, 1]
        assert outcome.generation_skew == 0
        assert outcome.error_rate == 0.0
        assert outcome.rollbacks == 0
        assert float(outcome.canary["speedup"]) > 1.0

    def test_unaware_rollout_also_lands_but_hurts_p99(
        self, clean_drain, clean_unaware
    ):
        _, drain_out, _ = clean_drain
        _, unaware_out, _ = clean_unaware
        assert unaware_out.status == "optimized"
        # The pause-aware balancer absorbs the stop-the-world windows; the
        # unaware one eats them as backlog (the paper's §IV-D motivation).
        assert unaware_out.worst_p99_ms > 1.5 * drain_out.worst_p99_ms

    def test_rates_cover_the_paper_pipeline_phases(self, clean_drain):
        _, outcome, _ = clean_drain
        rates = outcome.rates
        assert rates["tps_original"] > 0
        # Profiling overhead and background-BOLT contention genuinely
        # depress the measured service rate.
        assert rates["tps_profiling"] < rates["tps_original"]
        assert rates["tps_contention"] < rates["tps_original"]
        assert rates["tps_optimized"] > rates["tps_original"]
        assert rates["pause_seconds"] > 0

    def test_slo_rows_publish_as_fleet_gauges(self, clean_drain):
        from repro.harness.reporting import publish_bench_rows
        from repro.obs import metrics as _metrics

        _, outcome, _ = clean_drain
        _metrics.install()
        try:
            publish_bench_rows("fleet", outcome.slo_rows())
            snapshot = _metrics.current().snapshot()
            worst = snapshot["bench.fleet.worst_p99_ms"]
            (labels,) = worst.keys()
            assert "policy=drain" in labels and "status=optimized" in labels
            assert list(worst.values()) == [pytest.approx(outcome.worst_p99_ms)]
            assert "bench.fleet.canary_speedup" in snapshot
        finally:
            _metrics.uninstall()


class TestCanaryRollback:
    @pytest.fixture(scope="class")
    def pessimized(self, small_server, fleet_spec):
        return run_rollout(
            small_server, fleet_spec, drain=True, pessimize_layout=True
        )

    def test_measured_regression_rolls_back_fleet_wide(self, pessimized):
        controller, outcome, config = pessimized
        assert outcome.status == "rolled_back"
        assert float(outcome.canary["speedup"]) < config.rollback_below
        assert outcome.rollbacks == len(controller.replicas)
        assert [r["generation"] for r in outcome.replicas] == [0, 0, 0]
        assert outcome.error_rate == 0.0

    def test_rollback_restores_original_text_and_collects_bands(
        self, pessimized
    ):
        controller, outcome, _cfg = pessimized
        for replica in controller.replicas:
            assert not band_regions(replica.process)
            binary = replica.original
            for vtable in binary.vtables:
                for slot, func in enumerate(vtable.slots):
                    value = replica.process.address_space.read_u64(
                        vtable.slot_addr(slot)
                    )
                    assert value == binary.functions[func].addr
        assert outcome.events.count("replica.rollback") >= len(controller.replicas)


class TestFaultMatrix:
    def test_profile_truncated_retries_then_lands(self, small_server, fleet_spec):
        plan = FaultPlan([FaultSpec("profile.truncate")])
        _, outcome, _ = run_rollout(small_server, fleet_spec, plan=plan)
        assert outcome.faults_injected == 1
        assert outcome.retries >= 1            # (b) retry with backoff fired
        assert outcome.status == "optimized"   # transient: second attempt wins
        assert outcome.error_rate == 0.0       # (a) no request was lost
        assert [r["generation"] for r in outcome.replicas] == [1, 1, 1]

    def test_bolt_crash_transient_retries_then_lands(
        self, small_server, fleet_spec
    ):
        plan = FaultPlan([FaultSpec("bolt.crash")])
        _, outcome, _ = run_rollout(small_server, fleet_spec, plan=plan)
        assert outcome.faults_injected == 1
        assert outcome.retries >= 1
        assert outcome.status == "optimized"
        assert outcome.error_rate == 0.0

    def test_bolt_crash_persistent_degrades_gracefully(self, degraded):
        controller, outcome, config = degraded
        # (b) every retry was consumed, then the controller gave up cleanly.
        assert outcome.faults_injected == config.max_retries + 1
        assert outcome.retries == config.max_retries
        assert outcome.status == "degraded"
        assert outcome.installs == 0
        assert outcome.rollbacks >= 1  # the defensive (no-op) canary rollback
        # (a) the fleet served the whole stream on original code.
        assert outcome.error_rate == 0.0
        assert [r["generation"] for r in outcome.replicas] == [0, 0, 0]

    def test_degraded_fleet_bit_identical_to_unoptimized_replay(
        self, degraded, small_server, fleet_spec
    ):
        controller, outcome, config = degraded
        # (c) replaying the recorded demand schedule into fresh, never-
        # optimized replicas reproduces the exact machine state.
        digests = [r.semantic_digest() for r in controller.replicas]
        references = unoptimized_reference_digests(
            small_server, fleet_spec, config, outcome.demand_schedule
        )
        assert digests == references

    def test_mid_patch_exception_rolls_back_then_retries(
        self, small_server, fleet_spec
    ):
        plan = FaultPlan([FaultSpec("patch.mid_replace")])
        controller, outcome, _ = run_rollout(small_server, fleet_spec, plan=plan)
        assert outcome.faults_injected == 1
        assert outcome.rollbacks >= 1          # (b) half-applied patch undone
        assert outcome.retries >= 1
        assert outcome.status == "optimized"   # retry completed the install
        assert outcome.error_rate == 0.0       # (a)
        assert [r["generation"] for r in outcome.replicas] == [1, 1, 1]

    def test_replica_death_under_drain_is_contained(
        self, small_server, fleet_spec
    ):
        plan = FaultPlan([FaultSpec("replica.die_drain", node=1)])
        controller, outcome, _ = run_rollout(small_server, fleet_spec, plan=plan)
        assert outcome.faults_injected == 1
        assert outcome.status == "optimized"
        assert outcome.installs == 2
        assert [r["generation"] for r in outcome.replicas] == [1, 0, 1]
        assert outcome.replicas[1]["state"] == "failed"
        # (a) loss is confined to requests routed at the dead node before
        # the health check evicted it; the survivors lost nothing.
        assert outcome.requests_lost == outcome.replicas[1]["requests_lost"]
        assert 0 < outcome.error_rate < 0.05
        assert outcome.events.count("replica.detected_dead") == 1

    def test_straggler_holds_at_health_gate_then_proceeds(
        self, small_server, fleet_spec, clean_drain
    ):
        plan = FaultPlan([FaultSpec("replica.slow", node=2, slow_factor=4.0)])
        controller, outcome, _ = run_rollout(small_server, fleet_spec, plan=plan)
        _, clean_out, _ = clean_drain
        assert outcome.faults_injected == 1
        assert outcome.retries >= 1            # (b) health gate held + backoff
        assert outcome.status == "optimized"   # straggler recovered in time
        assert outcome.error_rate == 0.0       # (a)
        # The slow ticks are real idle cycles: the straggler's latency spike
        # is measured, not modelled.
        assert outcome.worst_p99_ms > 2 * clean_out.worst_p99_ms

    def test_optimized_fleet_preserves_workload_semantics(
        self, clean_drain, small_server, fleet_spec
    ):
        controller, outcome, config = clean_drain
        # (c) for the no-fault path: layout changes never change what the
        # workload computed.  Full machine-state identity is only defined
        # for same-layout runs (TestDeterminism) and never-patched replicas
        # (the degraded path): run stop points are round-quantized, rounds
        # are layout-length-dependent, so an optimized replica parks at a
        # slightly different intra-transaction position.  The workload-
        # visible state — counted site outcomes and demand satisfaction —
        # must match exactly.
        references = unoptimized_reference_digests(
            small_server, fleet_spec, config, outcome.demand_schedule
        )
        for replica, reference in zip(controller.replicas, references):
            txns, _threads, _rng, counted = replica.semantic_digest()
            ref_txns, _ref_threads, _ref_rng, ref_counted = reference
            assert counted == ref_counted
            assert abs(txns - ref_txns) <= 1  # round-boundary overshoot only
            assert txns >= replica.demand_total


class TestDeterminism:
    def test_event_log_replays_from_seed(self, degraded, small_server, fleet_spec):
        _, outcome, _ = degraded
        plan = FaultPlan([FaultSpec("bolt.crash", times=PERSISTENT)])
        _, again, _ = run_rollout(small_server, fleet_spec, drain=False, plan=plan)
        assert again.events.replay_digest() == outcome.events.replay_digest()
        assert again.p99_series == outcome.p99_series

    def test_superblock_twin_fleets_machine_identical(
        self, small_server, fleet_spec
    ):
        digests = {}
        for superblocks in (True, False):
            controller, outcome, _ = run_rollout(
                small_server, fleet_spec, n_replicas=2, superblocks=superblocks
            )
            assert outcome.status == "optimized"
            digests[superblocks] = [
                r.machine_digest() for r in controller.replicas
            ]
        assert digests[True] == digests[False]

    def test_one_bolt_serves_all_installs(
        self, fresh_engine, small_server, fleet_spec
    ):
        _, outcome, _ = run_rollout(small_server, fleet_spec)
        assert outcome.installs == 3
        stats = fresh_engine.stats()["bolt"]
        # One background BOLT built the artifact; every other replica's
        # install reused it through the content-addressed store.
        assert stats.misses == 1


class TestAnalyticModel:
    def test_analytic_model_agrees_in_shape(self, clean_drain, clean_unaware):
        """`harness.cluster`'s closed-form drain-vs-unaware claim, checked
        against measured replicas.

        Observed error band (recorded in the cluster module docstring): with
        the analytic model driven by the measured phase rates on the fleet's
        clock, absolute p99s agree within ~±25% after the tick-unit
        conversion, per-policy worst/baseline shapes within ~±30%, and the
        drain-vs-unaware separation direction always.
        """
        _, drain_out, drain_cfg = clean_drain
        _, unaware_out, unaware_cfg = clean_unaware
        rates = drain_out.rates
        tick = drain_cfg.tick_seconds
        drain_pred = analytic_prediction(rates, drain_cfg, drain=True)
        unaware_pred = analytic_prediction(rates, unaware_cfg, drain=False)

        # Direction: both agree the unaware balancer hurts worst-case p99.
        assert unaware_out.worst_p99_ms > 1.5 * drain_out.worst_p99_ms
        assert unaware_pred.worst_p99_ms > 1.5 * drain_pred.worst_p99_ms

        # Shape: worst/baseline degradation ratio per policy, within ±40%.
        for outcome, prediction in (
            (drain_out, drain_pred),
            (unaware_out, unaware_pred),
        ):
            measured = outcome.worst_p99_ms / outcome.baseline_p99_ms
            analytic = prediction.worst_p99_ms / prediction.baseline_p99_ms
            assert 0.6 < measured / analytic < 1.4

        # Absolute: the analytic model's "second" is one tick here, so its
        # p99s convert at tick_seconds; they then land within ±40%.
        for measured_ms, analytic_ms in (
            (drain_out.baseline_p99_ms, drain_pred.baseline_p99_ms * tick),
            (drain_out.worst_p99_ms, drain_pred.worst_p99_ms * tick),
            (unaware_out.worst_p99_ms, unaware_pred.worst_p99_ms * tick),
        ):
            assert 0.6 < measured_ms / analytic_ms < 1.4


class TestCli:
    def test_fleet_run_subcommand(self, fresh_engine, small_server, fleet_spec, capsys):
        from repro.cli import main
        from repro.engine.cells import WorkloadBundle, register_bundle, unregister_bundle

        register_bundle(
            "small_server_fleet",
            WorkloadBundle(
                name="small_server_fleet",
                workload=small_server,
                inputs={"readish": fleet_spec},
                eval_inputs=["readish"],
            ),
        )
        try:
            rc = main([
                "fleet", "run", "--workload", "small_server_fleet",
                "--replicas", "2", "--seed", "5",
                "--fault", "bolt.crash",
            ])
        finally:
            unregister_bundle("small_server_fleet")
        assert rc == 0
        out = capsys.readouterr().out
        assert "status optimized" in out
        assert "retries 1" in out
        assert "replay digest" in out

    def test_fault_spec_parsing(self):
        from repro.cli import _parse_fault

        spec = _parse_fault("replica.slow:2:persistent")
        assert (spec.site, spec.node) == ("replica.slow", 2)
        assert spec.persistent
        assert _parse_fault("bolt.crash").times == 1
        with pytest.raises(Exception):
            _parse_fault("not.a.site")
