"""Batched lock-step fleet tests: equivalence oracle, invariants, scenarios.

The central contract is the **equivalence oracle**: a cohort fleet run in
batched lock-step mode (``lockstep=True``, one shared VM per cohort) must
be bit-identical — machine digests and the full event log — to the same
fleet run in the serial reference mode (``lockstep=False``, one VM per
member).  The oracle covers a clean rollout (canary peel and merge
included) and a rollout with every named fault site armed plus a scheduled
drain window.  Rollouts are deterministic, so the expensive controller runs
are shared module-wide and every assertion on them is exact.

The supporting invariants get direct tests: absolute-demand serving (same
cumulative demand, any tick split → same machine state), deterministic
router splits under membership churn, quantized cohort routing, the
schema-v2 event log's v1 backward compatibility, and the scenario loader.
"""

import json

import pytest

from repro.errors import ReproError
from repro.fleet import (
    FAULT_SITES,
    EventLog,
    FaultPlan,
    FaultSpec,
    FleetConfig,
    FleetController,
    Replica,
    ReplicaState,
    Router,
)
from repro.fleet.events import EVENTS_SCHEMA_VERSION
from repro.fleet.router import CohortRouter
from repro.fleet.scenario import load_scenario, parse_scenario
from repro.harness.runner import link_original
from repro.obs import metrics


@pytest.fixture(scope="module")
def fleet_spec(small_server):
    return small_server.make_input("readish", 0.1, {"read_op": 8.0, "scan_op": 1.0})


def run_cohort_rollout(workload, spec, *, lockstep, plan=None, **overrides):
    overrides.setdefault("n_replicas", 4)
    config = FleetConfig(
        cohorts=True,
        lockstep=lockstep,
        seed=99,
        seed_stride=0,
        settle_ticks=14,
        drain=True,
        **overrides,
    )
    controller = FleetController(workload, spec, config, plan)
    return controller, controller.run(), config


def all_sites_plan():
    """One armed fault at every named site (each on a distinct stage)."""
    return FaultPlan(
        [
            FaultSpec("profile.truncate", node=0),
            FaultSpec("bolt.crash", node=0),
            FaultSpec("patch.mid_replace", node=2),
            FaultSpec("replica.die_drain", node=3),
            FaultSpec("replica.slow", node=5),
        ]
    )


@pytest.fixture(scope="module")
def lockstep_clean(small_server, fleet_spec):
    return run_cohort_rollout(small_server, fleet_spec, lockstep=True)


@pytest.fixture(scope="module")
def serial_clean(small_server, fleet_spec):
    return run_cohort_rollout(small_server, fleet_spec, lockstep=False)


@pytest.fixture(scope="module")
def faulted_pair(small_server, fleet_spec):
    """Six replicas, all five fault sites armed, one scheduled drain window.

    The lock-step run is executed under a metrics registry so the
    router-displacement counters can be asserted from the same rollout.
    """
    kwargs = dict(
        n_replicas=6,
        plan=all_sites_plan(),
        drain_windows=[(4, 3, 4)],
    )
    registry = metrics.install()
    try:
        lock = run_cohort_rollout(
            small_server, fleet_spec, lockstep=True,
            plan=all_sites_plan(), n_replicas=6, drain_windows=[(4, 3, 4)],
        )
    finally:
        metrics.uninstall()
    serial = run_cohort_rollout(small_server, fleet_spec, lockstep=False, **kwargs)
    return lock, serial, registry


def fleet_machine_digests(controller):
    return [r.machine_digest() for r in sorted(controller.replicas, key=lambda r: r.node)]


def unit_memberships(controller):
    return sorted(tuple(m.node for m in u.members) for u in controller.manager.units)


class TestEquivalenceOracleClean:
    def test_both_modes_optimize(self, lockstep_clean, serial_clean):
        _, lock_out, _ = lockstep_clean
        _, ser_out, _ = serial_clean
        assert lock_out.status == "optimized"
        assert ser_out.status == "optimized"
        assert lock_out.installs == ser_out.installs == 4

    def test_event_logs_bit_identical(self, lockstep_clean, serial_clean):
        _, lock_out, _ = lockstep_clean
        _, ser_out, _ = serial_clean
        assert lock_out.events.replay_digest() == ser_out.events.replay_digest()

    def test_machine_state_bit_identical(self, lockstep_clean, serial_clean):
        lock_ctl, _, _ = lockstep_clean
        ser_ctl, _, _ = serial_clean
        assert fleet_machine_digests(lock_ctl) == fleet_machine_digests(ser_ctl)

    def test_canary_peels_and_merges_home(self, lockstep_clean):
        _, out, _ = lockstep_clean
        peels = [e for e in out.events.events if e.kind == "cohort.peel"]
        merges = [e for e in out.events.events if e.kind == "cohort.merge"]
        assert any(e.attrs.get("reason") == "canary" for e in peels)
        assert merges, "canary never merged back into its origin cohort"
        # v2 schema: cohort lifecycle events carry cohort identities.
        assert all("new_cohort" in e.attrs for e in peels)
        assert all("into_cohort" in e.attrs or "cohort" in e.attrs for e in merges)

    def test_fleet_reconverges_to_one_shared_vm(self, lockstep_clean):
        ctl, _, _ = lockstep_clean
        assert unit_memberships(ctl) == [(0, 1, 2, 3)]
        (unit,) = ctl.manager.units
        assert len(unit.distinct_processes()) == 1

    def test_serial_mode_reconverges_to_same_membership(self, serial_clean):
        ctl, _, _ = serial_clean
        assert unit_memberships(ctl) == [(0, 1, 2, 3)]


class TestEquivalenceOracleFaulted:
    def test_every_site_fires_in_both_modes(self, faulted_pair):
        (_, lock_out, _), (_, ser_out, _), _ = faulted_pair
        for out in (lock_out, ser_out):
            fired = {
                e.attrs["site"]
                for e in out.events.events
                if e.kind == "fault.injected"
            }
            assert fired == set(FAULT_SITES)
            assert out.faults_injected == len(FAULT_SITES)

    def test_event_logs_bit_identical(self, faulted_pair):
        (_, lock_out, _), (_, ser_out, _), _ = faulted_pair
        assert lock_out.events.replay_digest() == ser_out.events.replay_digest()

    def test_machine_state_bit_identical(self, faulted_pair):
        (lock_ctl, _, _), (ser_ctl, _, _), _ = faulted_pair
        assert fleet_machine_digests(lock_ctl) == fleet_machine_digests(ser_ctl)

    def test_memberships_converge_identically(self, faulted_pair):
        (lock_ctl, _, _), (ser_ctl, _, _), _ = faulted_pair
        assert unit_memberships(lock_ctl) == unit_memberships(ser_ctl)

    def test_drain_window_peel_merges_bit_exact(self, faulted_pair):
        # Node 4 spent its drain window on the *same* generation as its
        # origin, so its merge is bit-exact even before re-imaging; merges
        # after a generation change normalize sub-quantum phase instead.
        (_, lock_out, _), _, _ = faulted_pair
        merges = [e for e in lock_out.events.events if e.kind == "cohort.merge"]
        assert merges
        assert any(e.attrs.get("bit_exact") for e in merges)

    def test_router_displacement_counters_published(self, faulted_pair):
        (_, lock_out, _), _, registry = faulted_pair
        # The drain window rerouted node 4's share; FleetSloRow mirrors the
        # totals and the metrics registry carries the fleet-wide counters.
        (row,) = lock_out.slo_rows()
        assert row.router_rerouted_requests == lock_out.rerouted_requests > 0
        assert row.router_lost_requests == lock_out.requests_lost
        rerouted = registry.counter("fleet.router.rerouted_requests")
        assert rerouted.value == lock_out.rerouted_requests
        assert (
            registry.counter("fleet.router.lost_requests").value
            == lock_out.requests_lost
        )


class TestAbsoluteDemandInvariant:
    """Machine state is a function of cumulative demand, not tick splits."""

    def _replica(self, workload, spec, seed):
        replica = Replica(0, workload, spec, link_original(workload), seed=seed)
        replica.process.run(max_transactions=300)
        replica.demand_total = replica.process.counters_total().transactions
        return replica

    def test_tick_splits_do_not_change_machine_state(self, small_server, fleet_spec):
        # Same cumulative demand, three different schedules — one bursty,
        # one smeared, one with an idle gap standing in for a drain window.
        splits = [
            [400, 0, 0, 150, 50],
            [50, 150, 200, 0, 200],
            [0, 0, 300, 0, 300],
        ]
        assert len({sum(s) for s in splits}) == 1
        digests = []
        for split in splits:
            replica = self._replica(small_server, fleet_spec, seed=99)
            for tick, arrivals in enumerate(split):
                replica.serve_tick(tick, arrivals, 0.05)
            digests.append(replica.machine_digest())
        assert digests[0] == digests[1] == digests[2]

    def test_different_seed_actually_changes_the_digest(self, small_server, fleet_spec):
        a = self._replica(small_server, fleet_spec, seed=99)
        b = self._replica(small_server, fleet_spec, seed=100)
        for tick in range(3):
            a.serve_tick(tick, 200, 0.05)
            b.serve_tick(tick, 200, 0.05)
        assert a.machine_digest() != b.machine_digest()


class _StubReplica:
    def __init__(self, node):
        self.node = node
        self.state = ReplicaState.SERVING
        self.requests_lost = 0
        self.healthy = True


class _StubUnit:
    def __init__(self, head, members):
        self.rep = head
        self.members = members


class _StubManager:
    def __init__(self, units, deficits=None):
        self.units = units
        self.deficits = deficits or {}

    def units_in_order(self):
        return sorted(self.units, key=lambda u: u.rep.node)

    def catchup_deficit(self, unit):
        return self.deficits.get(unit.rep.node, 0)


class TestRouterChurn:
    """Satellite: routing stays deterministic under membership churn."""

    def _churn_trace(self):
        replicas = [_StubReplica(n) for n in range(5)]
        router = Router(replicas)
        trace = []
        for tick in range(12):
            if tick == 3:
                replicas[1].state = ReplicaState.DRAINED
            if tick == 6:
                replicas[1].state = ReplicaState.SERVING
                replicas[4].state = ReplicaState.DRAINED
            if tick == 9:
                replicas[4].state = ReplicaState.SERVING
            trace.append(sorted(router.route(103).items()))
        return router, trace

    def test_identical_churn_gives_identical_splits(self):
        router_a, trace_a = self._churn_trace()
        router_b, trace_b = self._churn_trace()
        assert trace_a == trace_b
        assert router_a.rerouted_requests == router_b.rerouted_requests > 0
        assert router_a.lost_requests == router_b.lost_requests == 0

    def test_every_request_lands_each_tick(self):
        _, trace = self._churn_trace()
        for shares in trace:
            assert sum(n for _, n in shares) == 103

    def test_remainder_rotates_instead_of_pinning(self):
        _, trace = self._churn_trace()
        # 103 over 5 targets leaves remainder 3: the +1 extras must move
        # across nodes tick to tick, not pin to the lowest node ids.
        first, second = dict(trace[0]), dict(trace[1])
        assert first != second
        assert sorted(first.values()) == sorted(second.values())

    def test_all_drained_blackholes_deterministically(self):
        replicas = [_StubReplica(0)]
        router = Router(replicas)
        replicas[0].state = ReplicaState.DRAINED
        assert router.route(50) == {}
        assert router.requests_lost == 50
        assert router.lost_requests == 50


class TestCohortRouterQuantization:
    def _fleet(self, deficits=None):
        cohort_members = [_StubReplica(n) for n in (0, 1, 2)]
        loner = _StubReplica(3)
        units = [
            _StubUnit(cohort_members[0], cohort_members),
            _StubUnit(loner, [loner]),
        ]
        manager = _StubManager(units, deficits)
        router = CohortRouter(
            cohort_members + [loner], manager, catchup_per_tick=64
        )
        return router

    def test_cohort_members_get_exactly_equal_shares(self):
        router = self._fleet()
        for total in (103, 97, 1, 0, 555):
            shares = router.route(total)
            assert shares[0] == shares[1] == shares[2]

    def test_remainder_is_carried_not_smeared(self):
        router = self._fleet()
        offered = 0
        landed = 0
        for total in (103, 103, 103, 103):
            offered += total
            landed += sum(router.route(total).values())
        # Long-run load is conserved: only the current sub-quantum carry
        # (strictly less than the head count) is outstanding.
        assert offered - landed == router._carry < 4

    def test_catchup_extras_are_bounded_and_per_member(self):
        router = self._fleet(deficits={3: 500})
        shares = router.route(400)
        # The lagging singleton gets base + min(deficit, catchup_per_tick);
        # the cohort stays on equal base shares.
        assert shares[0] == shares[1] == shares[2]
        assert shares[3] - shares[0] == 64

    def test_lagging_cohort_charges_budget_per_head(self):
        router = self._fleet(deficits={0: 10})
        shares = router.route(400)
        # Every member of the lagging 3-wide cohort receives the extra, so
        # the pool is charged 3 * 10 before the equal base split.
        assert shares[0] == shares[1] == shares[2]
        assert shares[0] - shares[3] == 10
        assert sum(shares.values()) + router._carry == 400


class TestEventsSchemaCompat:
    """Satellite: v3 logs carry cohort + OSR kinds; v1/v2 files still load."""

    def test_v1_event_file_still_loads(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        records = [
            {"v": 1, "kind": "fleet.events.header", "seed": 5, "workload": "w"},
            {"tick": 0, "kind": "rollout.start"},
            {"tick": 1, "kind": "replica.drain", "node": 0},
            {"tick": 2, "kind": "replica.patched", "node": 0,
             "attrs": {"generation": 1}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        log, header = EventLog.load_jsonl(str(path))
        assert header["v"] == 1
        assert log.seed == 5
        assert log.kinds() == ["rollout.start", "replica.drain", "replica.patched"]
        assert log.events[2].attrs == {"generation": 1}

    def test_written_logs_carry_current_version_and_round_trip(
        self, tmp_path, lockstep_clean
    ):
        _, out, _ = lockstep_clean
        path = tmp_path / "v3.jsonl"
        out.events.write_jsonl(str(path), workload="small_server")
        log, header = EventLog.load_jsonl(str(path))
        assert header["v"] == EVENTS_SCHEMA_VERSION == 3
        assert log.replay_digest() == out.events.replay_digest()

    def test_newer_schema_is_rejected(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        path.write_text(
            json.dumps(
                {"v": EVENTS_SCHEMA_VERSION + 1,
                 "kind": "fleet.events.header", "seed": 1}
            )
            + "\n"
        )
        with pytest.raises(ReproError, match="newer"):
            EventLog.load_jsonl(str(path))


class TestScenarioLoader:
    GOOD = """
[scenario]
name = "t"
seed = 7

[[tenants]]
name = "a"
workload = "memcached"
replicas = 3
lockstep = true
policy = "drain"

  [[tenants.faults]]
  site = "bolt.crash"

  [[tenants.drain_windows]]
  node = 1
  start = 3
  length = 4
"""

    def test_round_trip(self):
        scenario = parse_scenario(self.GOOD)
        tenant = scenario.tenant("a")
        cfg = tenant.config
        assert scenario.name == "t"
        assert cfg.n_replicas == 3
        assert cfg.seed == 7          # inherited scenario default
        assert cfg.cohorts is True    # scenario fleets are cohort-native
        assert cfg.lockstep is True
        assert cfg.drain is True
        assert cfg.drain_windows == [(1, 3, 4)]
        assert tenant.plan is not None
        assert tenant.plan.specs[0].site == "bolt.crash"

    @pytest.mark.parametrize(
        "text, message",
        [
            ('[[tenants]]\nname="a"\nworkload="w"\nbogus=1\n', "unknown config key"),
            ('[scenario]\nname="x"\n', r"no \[\[tenants\]\]"),
            (
                '[[tenants]]\nname="a"\nworkload="w"\n'
                '[[tenants]]\nname="a"\nworkload="w"\n',
                "duplicate tenant",
            ),
            ('[[tenants]]\nname="a"\nworkload="w"\npolicy="x"\n', "policy must be"),
            ('[[tenants]]\nname="a"\n', "'workload'"),
            ("=", "invalid TOML"),
        ],
    )
    def test_bad_scenarios_fail_loudly(self, text, message):
        with pytest.raises(ReproError, match=message):
            parse_scenario(text)

    def test_committed_example_parses(self):
        scenario = load_scenario("examples/fleet_targets.toml")
        assert [t.name for t in scenario.tenants] == ["edge", "ref"]
        assert scenario.tenant("edge").config.lockstep is True
        assert scenario.tenant("ref").config.lockstep is False
