"""Tests for the command-line interface (cheap commands only; the heavy
figures are exercised by the benchmark suite)."""

import pytest

from repro.cli import FIGS, TABLES, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_fig_requires_known_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "2"])  # no Fig 2 in the paper

    def test_fig_transactions_option(self):
        args = build_parser().parse_args(["fig", "5", "--transactions", "300"])
        assert args.number == 5
        assert args.transactions == 300

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_registries_cover_paper_artifacts(self):
        assert set(FIGS) == {1, 3, 5, 6, 7, 8, 9}
        assert set(TABLES) == {1, 2}

    def test_obs_flags_after_subcommand(self):
        args = build_parser().parse_args(
            ["run-pipeline", "--trace-out", "t.json", "--metrics-out", "m.json"]
        )
        assert args.command == "run-pipeline"
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.json"
        assert args.log_json is False

    def test_obs_flags_on_every_experiment_command(self):
        for argv in (["list"], ["quickstart"], ["fig", "1"], ["table", "2"]):
            args = build_parser().parse_args([*argv, "--log-json"])
            assert args.log_json is True

    def test_obs_view_parses(self):
        args = build_parser().parse_args(["obs", "view", "trace.jsonl"])
        assert args.command == "obs"
        assert args.obs_command == "view"
        assert args.path == "trace.jsonl"


class TestExecution:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig 5" in out
        assert "table 2" in out
        assert "quickstart" in out

    def test_fig1_runs(self, capsys):
        assert main(["fig", "1"]) == 0
        out = capsys.readouterr().out
        assert "L1i capacity" in out
        assert "Broadwell" in out

    def test_fig1_with_trace_out(self, capsys, tmp_path):
        from repro.obs import trace as obs_trace

        path = tmp_path / "trace.jsonl"
        try:
            assert main(["fig", "1", "--trace-out", str(path)]) == 0
        finally:
            obs_trace.uninstall()
        assert path.exists()

    def test_obs_view_renders_timeline(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        span = {
            "name": "ocolos.profile", "span_id": 1, "depth": 0,
            "sim_start": 0.0, "sim_duration": 1.0,
            "wall_start": 0.0, "wall_duration": 0.1, "attrs": {"step": 1},
        }
        path.write_text(json.dumps(span) + "\n")
        assert main(["obs", "view", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ocolos.profile [step 1]" in out
