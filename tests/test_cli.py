"""Tests for the command-line interface (cheap commands only; the heavy
figures are exercised by the benchmark suite)."""

import pytest

from repro.cli import FIGS, TABLES, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_fig_requires_known_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "2"])  # no Fig 2 in the paper

    def test_fig_transactions_option(self):
        args = build_parser().parse_args(["fig", "5", "--transactions", "300"])
        assert args.number == 5
        assert args.transactions == 300

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_registries_cover_paper_artifacts(self):
        assert set(FIGS) == {1, 3, 5, 6, 7, 8, 9}
        assert set(TABLES) == {1, 2}


class TestExecution:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig 5" in out
        assert "table 2" in out
        assert "quickstart" in out

    def test_fig1_runs(self, capsys):
        assert main(["fig", "1"]) == 0
        out = capsys.readouterr().out
        assert "L1i capacity" in out
        assert "Broadwell" in out
