"""Offline-BOLTed-binary consistency: the oracle baseline must be a fully
self-consistent executable (the paper's BOLT updates *all* references via
relocations, which is what makes it an upper bound for OCOLOS)."""

import pytest

from repro.bolt.optimizer import run_bolt
from repro.isa.disassembler import disassemble_range
from repro.isa.instructions import Opcode
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile
from repro.vm.process import Process


@pytest.fixture(scope="module")
def bolted(tiny):
    proc = tiny.process()
    proc.run(max_transactions=50)
    session = PerfSession(period=300, overhead=0.0)
    session.attach(proc)
    proc.run(max_instructions=80_000)
    session.detach()
    profile, _ = extract_profile(session.samples, tiny.binary)
    return run_bolt(tiny.program, tiny.binary, profile, compiler_options=tiny.options)


def read_section(binary, name):
    section = binary.sections[name]
    return section, (lambda a, n: section.data[a - section.addr : a - section.addr + n])


class TestColdCodeRetargeting:
    def test_cold_calls_to_moved_functions_point_at_new_entries(self, tiny, bolted):
        """Relocation-mode behaviour: even calls inside bolt.org.text reach
        the moved functions' new addresses."""
        binary = bolted.binary
        moved = {
            tiny.binary.functions[n].addr: binary.functions[n].addr
            for n in bolted.hot_functions
            if binary.functions[n].addr != tiny.binary.functions[n].addr
        }
        section, read = read_section(binary, "bolt.org.text")
        stale = 0
        for name, info in binary.functions.items():
            if name in bolted.hot_functions:
                continue
            for block in info.blocks:
                if not section.contains(block.addr):
                    continue
                for _a, insn in disassemble_range(read, block.addr, block.addr + block.size):
                    if insn.op == Opcode.CALL and insn.target in moved:
                        stale += 1
        assert stale == 0

    def test_org_text_byte_length_preserved(self, tiny, bolted):
        org = bolted.binary.sections["bolt.org.text"]
        assert len(org.data) == len(tiny.binary.sections[".text"].data)
        assert org.addr == tiny.binary.sections[".text"].addr

    def test_hot_entries_resolve_in_hot_section(self, bolted):
        hot = bolted.binary.sections[".text.bolt1"]
        for name in bolted.hot_functions:
            info = bolted.binary.functions[name]
            assert hot.contains(info.addr) or (
                info.cold_section and bolted.binary.sections[info.cold_section].contains(info.addr)
            )


class TestInternalReferences:
    def test_hot_code_never_targets_stale_hot_copies(self, tiny, bolted):
        """Calls inside the new generation must reach either new-generation
        entries or genuinely-cold original functions — never the stale
        original copies of moved functions."""
        binary = bolted.binary
        stale_entries = {
            tiny.binary.functions[n].addr
            for n in bolted.hot_functions
            if binary.functions[n].addr != tiny.binary.functions[n].addr
        }
        section, read = read_section(binary, ".text.bolt1")
        for name in bolted.hot_functions:
            info = binary.functions[name]
            for block in info.blocks:
                if not section.contains(block.addr):
                    continue
                for _a, insn in disassemble_range(read, block.addr, block.addr + block.size):
                    if insn.op == Opcode.CALL:
                        assert insn.target not in stale_entries

    def test_offline_run_equals_online_behaviour_class(self, tiny, bolted):
        """The BOLTed binary must transact standalone with no faults over a
        long run — every pointer class consistent."""
        proc = Process(
            bolted.binary, tiny.program, tiny.input_spec(), n_threads=2, seed=17
        )
        delta = proc.run(max_transactions=1500)
        assert delta.transactions >= 1500

    def test_deterministic_emission(self, tiny, bolted):
        """Re-running BOLT on the same profile emits identical bytes."""
        proc = tiny.process(seed=7)
        proc.run(max_transactions=50)
        session = PerfSession(period=300, overhead=0.0)
        session.attach(proc)
        proc.run(max_instructions=80_000)
        session.detach()
        profile, _ = extract_profile(session.samples, tiny.binary)
        again = run_bolt(
            tiny.program, tiny.binary, profile, compiler_options=tiny.options
        )
        assert (
            again.binary.sections[".text.bolt1"].data
            == bolted.binary.sections[".text.bolt1"].data
        )
