"""Tests for lowering and linking: layout-aware branch lowering, symbol
resolution, jump tables, v-tables, fragments and splitting."""

import pytest

from repro.binary.binaryfile import (
    DATA_BASE,
    Fragment,
    Layout,
    RODATA_BASE,
    SectionLayout,
    TEXT_BASE,
)
from repro.binary.linker import link_program
from repro.compiler.codegen import CompilerOptions, block_label, lower_fragment
from repro.compiler.ir import (
    CondBr,
    IRFunction,
    Jump,
    Program,
    Ret,
    SiteKind,
    Switch,
    VTableSpec,
)
from repro.compiler.layout import source_order_layout
from repro.errors import LinkError
from repro.isa.disassembler import disassemble_range
from repro.isa.instructions import Opcode, alu, call, mkfp


def diamond_program():
    """entry -> (then | else) -> join; a classic diamond."""
    prog = Program(name="diamond", entry="f")
    func = IRFunction("f")
    b0, b1, b2, b3 = (func.new_block() for _ in range(4))
    site = prog.sites.allocate(SiteKind.BRANCH, "f")
    b0.body = [alu()]
    b0.terminator = CondBr(site=site, taken=2, fallthrough=1)
    b1.body = [alu()]
    b1.terminator = Jump(3)
    b2.body = [alu()]
    b2.terminator = Jump(3)
    b3.body = [alu()]
    b3.terminator = Ret()
    prog.add_function(func)
    return prog, site


def ops_of(blocks):
    return [[i.op for i in b.insns] for b in blocks]


class TestLowering:
    def test_fallthrough_elision_source_order(self):
        prog, _site = diamond_program()
        func = prog.functions["f"]
        blocks, tables = lower_fragment(prog, func, (0, 1, 2, 3), CompilerOptions())
        assert not tables
        # b0: alu + br_cond (fallthrough to b1 elided)
        assert ops_of(blocks)[0] == [Opcode.ALU, Opcode.BR_COND]
        assert not blocks[0].insns[-1].invert
        # b1: alu + jmp to b3 (b2 is next, not b3)
        assert ops_of(blocks)[1] == [Opcode.ALU, Opcode.JMP]
        # b2: alu only, fallthrough to b3 elided
        assert ops_of(blocks)[2] == [Opcode.ALU]

    def test_inverted_branch_when_taken_successor_is_next(self):
        prog, _site = diamond_program()
        func = prog.functions["f"]
        blocks, _ = lower_fragment(prog, func, (0, 2, 1, 3), CompilerOptions())
        term = blocks[0].insns[-1]
        assert term.op == Opcode.BR_COND
        assert term.invert
        assert term.target == block_label("f", 1)

    def test_both_successors_distant_emits_branch_plus_jump(self):
        prog, _site = diamond_program()
        func = prog.functions["f"]
        blocks, _ = lower_fragment(prog, func, (0, 3, 1, 2), CompilerOptions())
        assert ops_of(blocks)[0] == [Opcode.ALU, Opcode.BR_COND, Opcode.JMP]

    def test_switch_lowering_to_jump_table(self):
        prog = Program(name="s", entry="f")
        func = IRFunction("f")
        b0 = func.new_block()
        cases = [func.new_block() for _ in range(3)]
        for blk in cases:
            blk.terminator = Ret()
        site = prog.sites.allocate(SiteKind.SWITCH, "f", n_cases=3)
        b0.terminator = Switch(site=site, targets=tuple(c.bb_id for c in cases))
        prog.add_function(func)
        blocks, tables = lower_fragment(
            prog, func, (0, 1, 2, 3), CompilerOptions(jump_tables=True)
        )
        assert blocks[0].insns[-1].op == Opcode.JTAB
        assert len(tables) == 1
        assert tables[0].entries == [block_label("f", k) for k in (1, 2, 3)]

    def test_switch_lowering_to_compare_chain(self):
        prog = Program(name="s", entry="f")
        func = IRFunction("f")
        b0 = func.new_block()
        cases = [func.new_block() for _ in range(3)]
        for blk in cases:
            blk.terminator = Ret()
        site = prog.sites.allocate(SiteKind.SWITCH, "f", n_cases=3)
        b0.terminator = Switch(site=site, targets=tuple(c.bb_id for c in cases))
        prog.add_function(func)
        blocks, tables = lower_fragment(
            prog, func, (0, 1, 2, 3), CompilerOptions(jump_tables=False)
        )
        assert not tables
        ops = [i.op for i in blocks[0].insns]
        # two derived tests; last case falls through to next block (bb 1 is
        # next but last case target is bb 3, so a jmp is required)
        assert ops.count(Opcode.BR_COND) == 2
        assert ops[-1] == Opcode.JMP
        # derived sites registered against the switch
        derived = [i.site for i in blocks[0].insns if i.op == Opcode.BR_COND]
        for k, d in enumerate(derived):
            assert prog.sites.info(d).derived_from == (site, k)

    def test_relowering_reuses_derived_sites(self):
        prog = Program(name="s", entry="f")
        func = IRFunction("f")
        b0 = func.new_block()
        c1 = func.new_block()
        c2 = func.new_block()
        c1.terminator = Ret()
        c2.terminator = Ret()
        site = prog.sites.allocate(SiteKind.SWITCH, "f", n_cases=2)
        b0.terminator = Switch(site=site, targets=(1, 2))
        prog.add_function(func)
        opts = CompilerOptions(jump_tables=False)
        blocks1, _ = lower_fragment(prog, func, (0, 1, 2), opts)
        blocks2, _ = lower_fragment(prog, func, (0, 2, 1), opts)
        sites1 = [i.site for i in blocks1[0].insns if i.op == Opcode.BR_COND]
        sites2 = [i.site for i in blocks2[0].insns if i.op == Opcode.BR_COND]
        assert sites1 == sites2

    def test_instrument_fp_marks_mkfp(self):
        prog = Program(name="p", entry="f", fp_slot_count=1)
        func = IRFunction("f")
        b = func.new_block()
        b.body = [mkfp("f", 0)]
        b.terminator = Ret()
        prog.add_function(func)
        blocks, _ = lower_fragment(
            prog, func, (0,), CompilerOptions(instrument_fp=True)
        )
        assert blocks[0].insns[0].wrapped
        # the IR itself is untouched
        assert not func.blocks[0].body[0].wrapped


class TestLinker:
    def test_sections_present(self, tiny):
        binary = tiny.binary
        assert ".text" in binary.sections
        assert ".data" in binary.sections
        assert binary.sections[".text"].addr == TEXT_BASE
        assert binary.sections[".data"].addr == DATA_BASE

    def test_function_entries_are_block0(self, tiny):
        for name, info in tiny.binary.functions.items():
            entry_block = next(b for b in info.blocks if b.label == f"{name}#0")
            assert info.addr == entry_block.addr

    def test_functions_aligned(self, tiny):
        for info in tiny.binary.functions.values():
            assert info.addr % 16 == 0

    def test_blocks_do_not_overlap(self, tiny):
        spans = sorted(
            (b.addr, b.addr + b.size)
            for f in tiny.binary.functions.values()
            for b in f.blocks
        )
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert s2 >= e1

    def test_code_bytes_disassemble_cleanly(self, tiny):
        section = tiny.binary.sections[".text"]
        reader = lambda a, n: section.data[a - section.addr : a - section.addr + n]
        for info in tiny.binary.functions.values():
            for block in info.blocks:
                decoded = disassemble_range(reader, block.addr, block.addr + block.size)
                assert len(decoded) == block.n_instr

    def test_vtables_hold_function_entries(self, tiny):
        binary = tiny.binary
        data = binary.sections[".data"]
        for vt in binary.vtables:
            for slot, func_name in enumerate(vt.slots):
                off = vt.slot_addr(slot) - data.addr
                value = int.from_bytes(data.data[off : off + 8], "little")
                assert value == binary.functions[func_name].addr

    def test_fp_init_written(self, tiny):
        binary = tiny.binary
        data = binary.sections[".data"]
        off = binary.fp_slot_addr(0) - data.addr
        value = int.from_bytes(data.data[off : off + 8], "little")
        assert value == binary.functions["leaf"].addr

    def test_jump_tables_when_enabled(self, tiny_with_jump_tables):
        binary = tiny_with_jump_tables.binary
        assert ".rodata" in binary.sections
        assert binary.jump_tables
        table = binary.jump_tables[0]
        rodata = binary.sections[".rodata"]
        index = binary.block_index()
        for k, entry in enumerate(table.entries):
            off = table.addr + 8 * k - rodata.addr
            value = int.from_bytes(rodata.data[off : off + 8], "little")
            assert value == index[entry].addr

    def test_no_jump_tables_when_disabled(self, tiny):
        assert not tiny.binary.jump_tables
        assert ".rodata" not in tiny.binary.sections

    def test_layout_missing_entry_block_rejected(self):
        prog, _ = diamond_program()
        layout = Layout(
            sections=[
                SectionLayout(
                    name=".text",
                    base=TEXT_BASE,
                    fragments=[Fragment(function="f", block_ids=(1, 2, 3))],
                )
            ]
        )
        with pytest.raises(LinkError):
            link_program(prog, layout)

    def test_layout_unknown_function_rejected(self):
        prog, _ = diamond_program()
        layout = Layout(
            sections=[
                SectionLayout(
                    name=".text",
                    base=TEXT_BASE,
                    fragments=[Fragment(function="ghost", block_ids=(0,))],
                )
            ]
        )
        with pytest.raises(LinkError):
            link_program(prog, layout)

    def test_duplicate_block_placement_rejected(self):
        prog, _ = diamond_program()
        layout = Layout(
            sections=[
                SectionLayout(
                    name=".text",
                    base=TEXT_BASE,
                    fragments=[
                        Fragment(function="f", block_ids=(0, 1, 2, 3)),
                        Fragment(function="f", block_ids=(0,)),
                    ],
                )
            ]
        )
        with pytest.raises(LinkError):
            link_program(prog, layout)

    def test_overlapping_sections_rejected(self):
        prog, _ = diamond_program()
        layout = Layout(
            sections=[
                SectionLayout(
                    name=".a",
                    base=TEXT_BASE,
                    fragments=[Fragment(function="f", block_ids=(0, 1))],
                ),
                SectionLayout(
                    name=".b",
                    base=TEXT_BASE + 4,
                    fragments=[Fragment(function="f", block_ids=(2, 3))],
                ),
            ]
        )
        with pytest.raises(LinkError):
            link_program(prog, layout)

    def test_split_function_across_sections(self):
        prog, _ = diamond_program()
        layout = Layout(
            sections=[
                SectionLayout(
                    name=".hot",
                    base=TEXT_BASE,
                    fragments=[Fragment(function="f", block_ids=(0, 2, 3))],
                ),
                SectionLayout(
                    name=".cold",
                    base=TEXT_BASE + 0x10000,
                    fragments=[Fragment(function="f", block_ids=(1,))],
                ),
            ]
        )
        binary = link_program(prog, layout)
        info = binary.functions["f"]
        assert info.section == ".hot"
        assert info.cold_section == ".cold"
        cold_block = binary.block_index()["f#1"]
        assert cold_block.addr >= TEXT_BASE + 0x10000

    def test_custom_rodata_base(self):
        prog = Program(name="s", entry="f")
        func = IRFunction("f")
        b0 = func.new_block()
        c = func.new_block()
        c.terminator = Ret()
        site = prog.sites.allocate(SiteKind.SWITCH, "f", n_cases=1)
        b0.terminator = Switch(site=site, targets=(1,))
        prog.add_function(func)
        binary = link_program(
            prog,
            options=CompilerOptions(jump_tables=True),
            rodata_base=RODATA_BASE + 0x100000,
            rodata_name=".rodata.g1",
        )
        assert ".rodata.g1" in binary.sections
        assert binary.sections[".rodata.g1"].addr == RODATA_BASE + 0x100000

    def test_same_program_links_identically_twice(self, tiny):
        again = link_program(tiny.program, options=tiny.options)
        assert again.sections[".text"].data == tiny.binary.sections[".text"].data
        assert again.sections[".data"].data == tiny.binary.sections[".data"].data

    def test_function_order_changes_layout(self):
        prog, _ = diamond_program()
        g = IRFunction("g")
        gb = g.new_block()
        gb.body = [alu()]
        gb.terminator = Ret()
        prog.add_function(g)
        fwd = link_program(prog, source_order_layout(prog, function_order=["f", "g"]))
        rev = link_program(prog, source_order_layout(prog, function_order=["g", "f"]))
        assert fwd.functions["f"].addr < fwd.functions["g"].addr
        assert rev.functions["g"].addr < rev.functions["f"].addr
