"""Engine layer tests: fingerprints, artifact store, scheduler, cells.

The determinism guarantees under test are the ones the engine's caching and
parallelism rest on: identical specs fingerprint identically in every
process, serial and parallel sweeps produce identical measurements, and the
cache hit/miss accounting matches what actually happened.
"""

from __future__ import annotations

import dataclasses
import enum
import os
import subprocess
import sys

import pytest

from repro import obs
from repro.compiler.codegen import CompilerOptions
from repro.engine import cells as engine_cells
from repro.engine.cells import CellSpec, WorkloadBundle, prefetch, run_cell
from repro.engine.fingerprint import FingerprintError, canonical, fingerprint
from repro.engine.scheduler import Scheduler, SchedulerError, TaskGraph
from repro.engine.store import ArtifactStore, StoreError, configure, store
from repro.harness.reporting import publish_bench_rows, publish_bench_scalar
from repro.workloads.inputs import InputSpec


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass
class _Spec:
    name: str
    weight: float


class _Hooked:
    """Object exposing fingerprint_parts() instead of dataclass fields."""

    def __init__(self, payload, noise):
        self.payload = payload
        self.noise = noise  # deliberately NOT part of the fingerprint

    def fingerprint_parts(self):
        return (self.payload,)


class TestFingerprint:
    def test_equal_values_equal_digests(self):
        a = fingerprint({"x": 1, "y": [1.5, "z"]}, (2, 3))
        b = fingerprint({"x": 1, "y": [1.5, "z"]}, (2, 3))
        assert a == b

    def test_any_nested_change_changes_digest(self):
        base = fingerprint({"x": 1, "y": [1.5, "z"]})
        assert fingerprint({"x": 1, "y": [1.5, "w"]}) != base
        assert fingerprint({"x": 1, "y": [1.5000001, "z"]}) != base

    def test_dict_order_independent(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_set_order_independent(self):
        assert fingerprint({3, 1, 2}) == fingerprint({2, 3, 1})

    def test_bool_is_not_int(self):
        assert fingerprint(True) != fingerprint(1)

    def test_float_exact_repr(self):
        # 0.1 + 0.2 != 0.3 exactly; the fingerprint must see the difference.
        assert fingerprint(0.1 + 0.2) != fingerprint(0.3)
        assert canonical(0.5) == {"~f": "0.5"}

    def test_enum_and_dataclass(self):
        assert fingerprint(Color.RED) != fingerprint(Color.BLUE)
        assert fingerprint(_Spec("a", 1.0)) == fingerprint(_Spec("a", 1.0))
        assert fingerprint(_Spec("a", 1.0)) != fingerprint(_Spec("a", 2.0))

    def test_fingerprint_parts_hook_preferred(self):
        assert fingerprint(_Hooked("p", noise=1)) == fingerprint(
            _Hooked("p", noise=2)
        )
        assert fingerprint(_Hooked("p", 0)) != fingerprint(_Hooked("q", 0))

    def test_compiler_options_and_input_spec_fingerprint(self):
        assert fingerprint(CompilerOptions()) == fingerprint(CompilerOptions())
        assert fingerprint(CompilerOptions(jump_tables=True)) != fingerprint(
            CompilerOptions(jump_tables=False)
        )
        spec = InputSpec(name="probe")
        spec.branch_bias[3] = 0.75
        spec2 = InputSpec(name="probe")
        spec2.branch_bias[3] = 0.75
        assert fingerprint(spec) == fingerprint(spec2)

    def test_unfingerprintable_value_rejected(self):
        with pytest.raises(FingerprintError):
            fingerprint(lambda: None)

    def test_stable_across_processes_and_hash_seeds(self):
        """The digest may not depend on PYTHONHASHSEED or process identity."""
        script = (
            "from repro.engine.fingerprint import fingerprint\n"
            "from repro.compiler.codegen import CompilerOptions\n"
            "from repro.workloads.mysql import mysql_params\n"
            "print(fingerprint({'b': 2, 'a': 1.5, 's': {'y', 'x'}},"
            " CompilerOptions(), mysql_params()))\n"
        )
        digests = []
        for seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.append(out.stdout.strip())
        assert digests[0] == digests[1]
        # and equal to the in-process value
        from repro.workloads.mysql import mysql_params

        local = fingerprint(
            {"b": 2, "a": 1.5, "s": {"y", "x"}}, CompilerOptions(), mysql_params()
        )
        assert digests[0] == local


# ---------------------------------------------------------------------------
# artifact store
# ---------------------------------------------------------------------------


class TestArtifactStore:
    def test_miss_raises_and_counts(self):
        s = ArtifactStore()
        key = s.key("profile", ("nothing",))
        with pytest.raises(KeyError):
            s.get(key)
        assert s.stats()["profile"].misses == 1
        assert s.stats()["profile"].hits == 0

    def test_put_get_returns_same_object(self):
        s = ArtifactStore()
        key = s.key("binary", ("w1",))
        value = {"payload": [1, 2, 3]}
        s.put(key, value)
        assert s.get(key) is value
        assert s.stats()["binary"].hits == 1
        assert s.stats()["binary"].entries == 1

    def test_get_or_build_builds_exactly_once(self):
        s = ArtifactStore()
        calls = []
        for _ in range(3):
            got = s.get_or_build("bolt", ("k",), lambda: calls.append(1) or "built")
        assert got == "built"
        assert len(calls) == 1
        assert s.stats()["bolt"].misses == 1
        assert s.stats()["bolt"].hits == 2

    def test_contains_does_not_count(self):
        s = ArtifactStore()
        key = s.key("bundle", ("x",))
        assert not s.contains(key)
        s.put(key, 1)
        assert s.contains(key)
        assert "bundle" not in s.stats() or s.stats()["bundle"].hits == 0

    def test_disk_roundtrip_and_promotion(self, tmp_path):
        root = str(tmp_path / "cache")
        writer = ArtifactStore(cache_dir=root)
        key = writer.key("profile", ("p", 0.3))
        writer.put(key, {"samples": 17})

        reader = ArtifactStore(cache_dir=root)
        assert reader.contains(key)
        value = reader.get(key)
        assert value == {"samples": 17}
        # promoted into memory: second get returns the identical object
        assert reader.get(key) is value
        assert reader.stats()["profile"].hits == 2
        assert reader.stats()["profile"].misses == 0

    def test_corrupt_disk_artifact_rejected(self, tmp_path):
        root = str(tmp_path / "cache")
        s = ArtifactStore(cache_dir=root)
        key = s.key("pgo_binary", ("bad",))
        path = os.path.join(root, key.kind, f"{key.digest}.pkl")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        with pytest.raises(StoreError):
            s.get(key)

    def test_clear_drops_memory_not_disk(self, tmp_path):
        root = str(tmp_path / "cache")
        s = ArtifactStore(cache_dir=root)
        key = s.key("cell.pipeline", ("c",))
        s.put(key, "result")
        s.clear()
        assert len(s) == 0
        assert s.get(key) == "result"  # reloaded from disk

    def test_cache_counters_published(self):
        s = ArtifactStore()
        _tracer, registry = obs.enable()
        try:
            key = s.key("binary", ("m",))
            with pytest.raises(KeyError):
                s.get(key)
            s.put(key, 1)
            s.get(key)
            snap = registry.snapshot()
            assert snap.value("engine.cache.miss", kind="binary", layer="none") == 1
            assert snap.value("engine.cache.hit", kind="binary", layer="memory") == 1
        finally:
            obs.disable()

    def test_global_store_configure_and_reset(self, tmp_path, fresh_engine):
        configured = configure(cache_dir=str(tmp_path / "ac"))
        assert store() is configured
        assert configured.disk is not None
        from repro import engine

        fresh = engine.reset()
        assert store() is fresh
        assert fresh.disk is None


class TestDiskGc:
    @staticmethod
    def _fill(tmp_path, payloads):
        """A disk store holding ``name -> payload`` with staggered atimes
        (oldest first, in dict order)."""
        s = ArtifactStore(cache_dir=str(tmp_path / "cache"))
        keys = {}
        for i, (name, payload) in enumerate(payloads.items()):
            key = s.key("binary", (name,))
            s.put(key, payload)
            path = s.disk._path(key)
            stamp = 1_000_000 + i * 100
            os.utime(path, (stamp, stamp))
            keys[name] = key
        return s, keys

    @staticmethod
    def _sizes(store_):
        return {digest: size for _, digest, size in store_.disk.entries()}

    def test_gc_evicts_lru_until_under_cap(self, tmp_path):
        s, keys = self._fill(
            tmp_path, {"old": b"x" * 400, "mid": b"y" * 400, "new": b"z" * 400}
        )
        sizes = self._sizes(s)
        total = sum(sizes.values())
        # Cap that forces exactly the oldest artifact out.
        cap = total - 1
        evicted = s.disk.gc(cap)
        assert [digest for _, digest, _ in evicted] == [keys["old"].digest]
        remaining = self._sizes(s)
        assert keys["old"].digest not in remaining
        assert sum(remaining.values()) <= cap
        # Idempotent once under the cap.
        assert s.disk.gc(cap) == []

    def test_gc_to_zero_clears_everything(self, tmp_path):
        s, _keys = self._fill(tmp_path, {"a": b"1" * 64, "b": b"2" * 64})
        evicted = s.disk.gc(0)
        assert len(evicted) == 2
        assert s.disk.entries() == []

    def test_get_refreshes_recency(self, tmp_path):
        s, keys = self._fill(
            tmp_path, {"old": b"x" * 400, "mid": b"y" * 400, "new": b"z" * 400}
        )
        # Re-read the oldest artifact from disk (fresh store: cold memory
        # layer) — the load must touch it so gc prefers evicting "mid".
        reader = ArtifactStore(cache_dir=str(tmp_path / "cache"))
        assert reader.get(keys["old"]) == b"x" * 400
        total = sum(self._sizes(s).values())
        evicted = s.disk.gc(total - 1)
        assert [digest for _, digest, _ in evicted] == [keys["mid"].digest]

    def test_gc_rejects_negative_cap(self, tmp_path):
        s, _keys = self._fill(tmp_path, {"a": b"1"})
        with pytest.raises(StoreError):
            s.disk.gc(-1)

    def test_cli_engine_gc(self, tmp_path, fresh_engine, capsys):
        from repro.cli import main

        root = str(tmp_path / "cache")
        s = ArtifactStore(cache_dir=root)
        for i, name in enumerate(("one", "two")):
            key = s.key("binary", (name,))
            s.put(key, b"v" * 512)
            stamp = 2_000_000 + i * 100
            os.utime(s.disk._path(key), (stamp, stamp))
        assert main(["engine", "gc", "--artifact-cache", root, "--max-bytes", "1K"]) == 0
        out = capsys.readouterr().out
        assert "evicted 1 artifacts" in out
        assert "kept 1 artifacts" in out

    def test_cli_size_suffixes(self):
        from repro.cli import _parse_size

        assert _parse_size("1024") == 1024
        assert _parse_size("2K") == 2048
        assert _parse_size("1.5M") == int(1.5 * 1024**2)
        assert _parse_size("1G") == 1024**3
        assert _parse_size("512MB") == 512 * 1024**2


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


def _const(x):
    return x


def _double(x):
    return 2 * x


def _sum_deps(*vals):
    return sum(vals)


def _boom():
    raise RuntimeError("stage exploded")


def _chain_graph(n_cells: int) -> TaskGraph:
    graph = TaskGraph()
    for i in range(n_cells):
        graph.add(f"c{i}:build", _const, args=(i,))
        graph.add(f"c{i}:opt", _double, deps=(f"c{i}:build",))
        graph.add(
            f"c{i}:measure", _sum_deps, deps=(f"c{i}:build", f"c{i}:opt"), result=True
        )
    return graph


class TestTaskGraph:
    def test_duplicate_task_rejected(self):
        graph = TaskGraph()
        graph.add("a", _const, args=(1,))
        with pytest.raises(SchedulerError, match="duplicate"):
            graph.add("a", _const, args=(2,))

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        graph.add("a", _const, args=(1,), deps=("ghost",))
        with pytest.raises(SchedulerError, match="unknown task"):
            graph.topological_order()

    def test_cycle_detected(self):
        graph = TaskGraph()
        graph.add("a", _const, deps=("b",))
        graph.add("b", _const, deps=("a",))
        with pytest.raises(SchedulerError, match="cycle"):
            graph.topological_order()

    def test_topological_order_respects_deps(self):
        graph = _chain_graph(3)
        order = [t.name for t in graph.topological_order()]
        for i in range(3):
            assert order.index(f"c{i}:build") < order.index(f"c{i}:opt")
            assert order.index(f"c{i}:opt") < order.index(f"c{i}:measure")

    def test_components_are_the_cells(self):
        graph = _chain_graph(4)
        comps = graph.components()
        assert len(comps) == 4
        for i, comp in enumerate(comps):
            assert [t.name for t in comp] == [
                f"c{i}:build",
                f"c{i}:opt",
                f"c{i}:measure",
            ]


class TestScheduler:
    def test_jobs_must_be_positive(self):
        with pytest.raises(SchedulerError):
            Scheduler(jobs=0)

    def test_serial_results(self):
        results = Scheduler(jobs=1).run(_chain_graph(3))
        # measure = build + double(build) = 3 * i
        assert results == {f"c{i}:measure": 3 * i for i in range(3)}

    def test_parallel_matches_serial(self):
        serial = Scheduler(jobs=1).run(_chain_graph(5))
        parallel = Scheduler(jobs=3).run(_chain_graph(5))
        assert parallel == serial

    def test_failed_task_propagates(self):
        graph = TaskGraph()
        graph.add("bad", _boom, result=True)
        with pytest.raises(RuntimeError, match="exploded"):
            Scheduler(jobs=1).run(graph)

    def test_task_counters(self):
        _tracer, registry = obs.enable()
        try:
            Scheduler(jobs=1).run(_chain_graph(2))
            snap = registry.snapshot()
            assert snap.value("engine.tasks.submitted") == 6
            assert snap.value("engine.tasks.completed") == 6
            assert snap.value("engine.tasks.failed") == 0
        finally:
            obs.disable()

    def test_wall_timings_recorded_serial_and_parallel(self):
        for jobs in (1, 3):
            sched = Scheduler(jobs=jobs)
            sched.run(_chain_graph(3))
            names = sorted(t.name for t in sched.last_timings)
            assert names == sorted(_chain_graph(3).tasks)
            assert all(t.seconds >= 0.0 for t in sched.last_timings)
            by_name = {t.name: t for t in sched.last_timings}
            assert by_name["c0:measure"].deps == ("c0:build", "c0:opt")
            assert by_name["c0:measure"].stage == "measure"

    def test_stage_summary_and_critical_path(self):
        from repro.engine.scheduler import TaskTiming, critical_path, stage_summary

        timings = [
            TaskTiming("c0:build", 1.0),
            TaskTiming("c0:measure", 2.0, ("c0:build",)),
            TaskTiming("c1:build", 5.0),
            TaskTiming("c1:measure", 0.5, ("c1:build",)),
        ]
        rows = stage_summary(timings)
        assert rows[0] == ("build", 2, 6.0, 5.0)  # heaviest stage first
        assert rows[1] == ("measure", 2, 2.5, 2.0)
        chain = critical_path(timings)
        assert [t.name for t in chain] == ["c1:build", "c1:measure"]

    def test_timings_persisted_to_disk_cache(self, tmp_path, fresh_engine):
        from repro.engine.scheduler import load_timings
        from repro.engine.store import configure

        cache = str(tmp_path / "cache")
        configure(cache_dir=cache)
        Scheduler(jobs=1).run(_chain_graph(2))
        loaded = load_timings(cache)
        assert sorted(t.name for t in loaded) == sorted(_chain_graph(2).tasks)
        assert load_timings(str(tmp_path / "missing")) == []


# ---------------------------------------------------------------------------
# cells: caching, parallel determinism, warm-store behaviour
# ---------------------------------------------------------------------------


def _register_mini(small_server, small_inputs) -> WorkloadBundle:
    bundle = WorkloadBundle(
        name="mini",
        workload=small_server,
        inputs=dict(small_inputs),
        eval_inputs=list(small_inputs),
    )
    engine_cells.register_bundle("mini", bundle)
    return bundle


def _measurement_tuple(result):
    """Exact-comparison projection of a PipelineResult."""
    return (
        result.original.tps,
        result.ocolos.tps,
        result.bolt_oracle.tps,
        result.original.counters,
        result.ocolos.counters,
        result.rss_original,
        result.rss_ocolos,
        result.rss_bolt,
    )


class TestCells:
    def test_run_cell_cached_with_identity(
        self, fresh_engine, small_server, small_inputs
    ):
        _register_mini(small_server, small_inputs)
        spec = CellSpec("pipeline", "mini", "readish", transactions=120)
        first = run_cell(spec)
        second = run_cell(spec)
        assert second is first
        stats = store().stats()["cell.pipeline"]
        assert stats.misses == 1
        assert stats.hits == 1

    def test_serial_and_parallel_sweeps_identical(
        self, fresh_engine, small_server, small_inputs
    ):
        """The headline determinism guarantee: --jobs N changes nothing."""
        specs = [
            CellSpec("pipeline", "mini", "readish", transactions=120),
            CellSpec("pipeline", "mini", "writish", transactions=120),
        ]

        _register_mini(small_server, small_inputs)
        assert prefetch(specs, jobs=1) == 2
        serial = [_measurement_tuple(run_cell(s)) for s in specs]

        from repro import engine

        engine.reset()
        _register_mini(small_server, small_inputs)
        assert prefetch(specs, jobs=2) == 2
        parallel = [_measurement_tuple(run_cell(s)) for s in specs]

        assert parallel == serial

    def test_prefetch_dedups_and_skips_cached(
        self, fresh_engine, small_server, small_inputs
    ):
        _register_mini(small_server, small_inputs)
        spec = CellSpec("pipeline", "mini", "readish", transactions=120)
        assert prefetch([spec, spec], jobs=1) == 1
        assert prefetch([spec], jobs=1) == 0

    def test_warm_disk_store_zero_rebuilds(
        self, fresh_engine, tmp_path, small_server, small_inputs
    ):
        """A warm --artifact-cache serves the cell without recomputation."""
        cache_dir = str(tmp_path / "ac")
        spec = CellSpec("pipeline", "mini", "readish", transactions=120)

        configure(cache_dir=cache_dir)
        _register_mini(small_server, small_inputs)
        cold = run_cell(spec)
        assert store().stats()["cell.pipeline"].misses == 1

        # Fresh process simulation: empty memory layer, same disk.
        configure(cache_dir=cache_dir)
        warm = run_cell(spec)
        stats = store().stats()["cell.pipeline"]
        assert stats.misses == 0
        assert stats.hits == 1
        assert _measurement_tuple(warm) == _measurement_tuple(cold)

    def test_no_binary_attribute_hacks_on_workloads(
        self, fresh_engine, small_server, small_inputs
    ):
        """Binaries live in the store now, not as attributes on workloads."""
        _register_mini(small_server, small_inputs)
        run_cell(CellSpec("pipeline", "mini", "readish", transactions=120))
        assert not hasattr(small_server, "_original_binary")

    def test_unknown_workload_and_kind_rejected(self, fresh_engine):
        with pytest.raises(KeyError):
            engine_cells.workload_bundle("oracle_db")
        with pytest.raises(KeyError):
            engine_cells.cell_graph([CellSpec("warp", "mini", "readish")])


# ---------------------------------------------------------------------------
# bench result export (satellite: harness results through the registry)
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _Row:
    workload: str
    speedup: float
    samples: int


class TestBenchExport:
    def test_rows_become_labelled_gauges(self):
        _tracer, registry = obs.enable()
        try:
            publish_bench_rows(
                "fig5", [_Row("mysql", 1.32, 900), _Row("mongodb", 1.18, 700)]
            )
            snap = registry.snapshot()
            assert snap.value("bench.fig5.speedup", workload="mysql") == 1.32
            assert snap.value("bench.fig5.samples", workload="mongodb") == 700
        finally:
            obs.disable()

    def test_scalar_export(self):
        _tracer, registry = obs.enable()
        try:
            publish_bench_scalar("fig3", "ocolos_tps", 123.5, input="readish")
            snap = registry.snapshot()
            assert snap.value("bench.fig3.ocolos_tps", input="readish") == 123.5
        finally:
            obs.disable()

    def test_noop_without_registry(self):
        publish_bench_rows("fig5", [_Row("mysql", 1.0, 1)])
        publish_bench_scalar("fig5", "x", 1.0)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliFlags:
    def test_fig_accepts_engine_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["fig", "5", "--jobs", "2", "--artifact-cache", "/tmp/x"]
        )
        assert args.jobs == 2
        assert args.artifact_cache == "/tmp/x"

    def test_run_pipeline_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run-pipeline"])
        assert args.jobs == 1
        assert args.artifact_cache is None

    def test_engine_stats_subcommand(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["engine", "stats", "--artifact-cache", "/tmp/x"]
        )
        assert args.command == "engine"
        assert args.engine_command == "stats"
        assert args.artifact_cache == "/tmp/x"
