"""Tests for the simulated address space."""

import pytest

from repro.errors import LoaderError, SegmentationFault
from repro.vm.address_space import AddressSpace


@pytest.fixture()
def space():
    s = AddressSpace()
    s.map_region(0x1000, size=0x1000, name="a")
    s.map_region(0x4000, data=b"\xaa" * 16, name="b", executable=True)
    return s


class TestMapping:
    def test_map_and_lookup(self, space):
        assert space.is_mapped(0x1000)
        assert space.is_mapped(0x1FFF)
        assert not space.is_mapped(0x2000)
        assert space.region_at(0x4008).name == "b"

    def test_map_requires_data_or_size(self):
        with pytest.raises(LoaderError):
            AddressSpace().map_region(0x1000)

    def test_overlap_with_previous_rejected(self, space):
        with pytest.raises(LoaderError):
            space.map_region(0x1800, size=0x100)

    def test_overlap_with_next_rejected(self, space):
        with pytest.raises(LoaderError):
            space.map_region(0x3FF0, size=0x100)

    def test_adjacent_regions_allowed(self, space):
        space.map_region(0x2000, size=0x100)
        assert space.is_mapped(0x2000)

    def test_unmap(self, space):
        space.unmap_region(0x1000)
        assert not space.is_mapped(0x1000)
        assert space.is_mapped(0x4000)

    def test_unmap_requires_exact_start(self, space):
        with pytest.raises(LoaderError):
            space.unmap_region(0x1004)

    def test_regions_sorted(self, space):
        space.map_region(0x100, size=16)
        starts = [r.start for r in space.regions()]
        assert starts == sorted(starts)

    def test_mapped_bytes(self, space):
        assert space.mapped_bytes() == 0x1000 + 16


class TestAccess:
    def test_read_write_roundtrip(self, space):
        space.write(0x1100, b"hello")
        assert space.read(0x1100, 5) == b"hello"

    def test_u64_roundtrip(self, space):
        space.write_u64(0x1200, 0xDEADBEEF12345678)
        assert space.read_u64(0x1200) == 0xDEADBEEF12345678

    def test_initial_data_preserved(self, space):
        assert space.read(0x4000, 4) == b"\xaa" * 4

    def test_unmapped_read_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.read(0x9000, 1)

    def test_cross_region_access_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.read(0x1FFC, 8)

    def test_unmapped_write_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.write(0x9000, b"x")

    def test_fault_carries_address(self, space):
        with pytest.raises(SegmentationFault) as exc:
            space.read(0x9000, 1)
        assert exc.value.address == 0x9000


class TestWriteObservers:
    def test_executable_writes_notify(self, space):
        events = []
        space.add_write_observer(lambda a, n: events.append((a, n)))
        space.write(0x4002, b"zz")
        assert events == [(0x4002, 2)]

    def test_data_writes_do_not_notify(self, space):
        events = []
        space.add_write_observer(lambda a, n: events.append((a, n)))
        space.write(0x1000, b"zz")
        assert events == []

    def test_u64_write_to_code_notifies(self, space):
        events = []
        space.add_write_observer(lambda a, n: events.append((a, n)))
        space.write_u64(0x4000, 1)
        assert events == [(0x4000, 8)]
