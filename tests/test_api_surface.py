"""Tests for the public API surface and lazy package exports."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_exports(self):
        names = dir(repro)
        assert "Ocolos" in names
        assert "run_bolt" in names


@pytest.mark.parametrize(
    "package",
    [
        "repro.isa",
        "repro.binary",
        "repro.compiler",
        "repro.vm",
        "repro.uarch",
        "repro.profiling",
        "repro.bolt",
        "repro.core",
        "repro.workloads",
        "repro.harness",
        "repro.analysis",
        "repro.obs",
    ],
)
class TestPackageExports:
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{package}.{name}"

    def test_unknown_name_raises(self, package):
        module = importlib.import_module(package)
        if hasattr(module, "__getattr__"):
            with pytest.raises(AttributeError):
                module.__getattr__("definitely_not_a_symbol")


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_segfault_formats_address(self):
        from repro.errors import SegmentationFault

        err = SegmentationFault(0xDEAD, "test")
        assert "0xdead" in str(err)
        assert err.address == 0xDEAD
