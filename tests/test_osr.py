"""On-stack replacement tests: mapper verification, transfer, oracles.

The headline claims under test (ISSUE 10 acceptance criteria):

* a server whose dispatch loop never returns (``loop_server``) reaches the
  fully-BOLTed final generation — zero pinned stack-live functions, zero
  carry bytes for mappable frames;
* execution after OSR stays bit-identical to the reference interpreter
  (superblock-twin machine digests) and workload-identical to a
  never-optimized run (semantic digest vs the demand-schedule replay);
* ``FleetConfig(osr=True)`` rollouts and rollbacks complete with zero
  quiesce-wait ticks — rollback evacuates band frames instead of serving
  ticks until they drain;
* band GC is per-band: a band is reclaimed the tick its last frame leaves,
  independent of other bands (regression for the all-or-nothing collector).
"""

import pytest

from repro.binary.binaryfile import (
    BOLT_GEN_STRIDE,
    BOLT_TEXT_BASE,
    RODATA_BASE,
    Binary,
)
from repro.core.orchestrator import Ocolos, OcolosConfig
from repro.errors import ReproError
from repro.fleet import FleetConfig, FleetController, unoptimized_reference_digests
from repro.fleet.rollback import try_collect_bands
from repro.harness.runner import launch, link_original
from repro.osr import (
    FOREIGN,
    MAPPED,
    UNMAPPABLE,
    FrameMapper,
    binary_reader,
    collect_osr_points,
)
from repro.workloads.loop_server import loop_server_inputs, loop_server_like


@pytest.fixture(scope="module")
def loop_server():
    return loop_server_like()


@pytest.fixture(scope="module")
def loop_spec(loop_server):
    return loop_server_inputs(loop_server)["steady"]


@pytest.fixture(scope="module")
def osr_pipeline(loop_server, loop_spec):
    """Three OSR generations on the never-returning loop_server."""
    binary = link_original(loop_server)
    process = launch(loop_server, loop_spec, seed=5)
    process.run(max_transactions=200)
    ocolos = Ocolos(
        process, binary,
        compiler_options=loop_server.options,
        config=OcolosConfig(osr=True),
    )
    reports = [ocolos.optimize_once()]
    for _ in range(2):
        process.run(max_transactions=300)
        reports.append(ocolos.optimize_once())
    return process, binary, ocolos, reports


def band_regions(process):
    return [
        r for r in process.address_space.regions()
        if BOLT_TEXT_BASE <= r.start < RODATA_BASE
    ]


# ----------------------------------------------------------------------
# OSR points
# ----------------------------------------------------------------------


class TestOsrPoints:
    def test_every_instruction_boundary_is_a_point(self, tiny):
        index = collect_osr_points(
            binary_reader(tiny.binary), tiny.binary, ["main"]
        )
        info = tiny.binary.functions["main"]
        assert len(index) == sum(b.n_instr for b in info.blocks)
        for block in info.blocks:
            point = index.get(block.addr)
            assert point is not None and point.function == "main"

    def test_entry_and_backedge_classification(self, tiny):
        index = collect_osr_points(binary_reader(tiny.binary), tiny.binary)
        main = tiny.binary.functions["main"]
        # main's single block ends in Jump(0): its own entry is the target
        # of a backward jump, so "backedge" outranks "entry".
        assert index.classify(main.blocks[0].addr) == "backedge"
        # helper0's entry is never a loop target.
        helper = tiny.binary.functions["helper0"]
        assert index.classify(helper.blocks[0].addr) == "entry"
        # Off-index addresses degrade to the quantum-boundary default.
        assert index.classify(0xDEAD_0000) == "quantum"


# ----------------------------------------------------------------------
# FrameMapper
# ----------------------------------------------------------------------


class TestFrameMapper:
    @pytest.fixture(scope="class")
    def mapper(self, osr_pipeline):
        _process, binary, _ocolos, reports = osr_pipeline
        bolted = reports[0].bolt.binary
        read = binary_reader(binary, bolted)
        return FrameMapper.build(read, [binary], bolted), binary, bolted

    def test_moved_entries_map_to_target_entries(self, mapper):
        m, original, bolted = mapper
        for name in m.functions:
            outcome, new, func = m.lookup(original.functions[name].addr)
            assert outcome == MAPPED and func == name
            assert new == bolted.functions[name].blocks[0].addr

    def test_lookup_trichotomy(self, mapper):
        m, original, _bolted = mapper
        assert m.functions, "BOLT moved nothing?"
        # Data addresses and unmoved code are foreign.
        assert m.lookup(RODATA_BASE)[0] == FOREIGN
        assert m.lookup(0)[0] == FOREIGN
        # Every span address is either mapped or (per-function) unmappable.
        for start, end, func in m.spans:
            outcome, _new, owner = m.lookup(start)
            assert outcome in (MAPPED, UNMAPPABLE)
            assert owner == func

    def test_absent_function_is_unmappable_wholesale(self, mapper):
        m, original, bolted = mapper
        victim = m.functions[0]
        pruned = Binary(
            name=bolted.name,
            sections=bolted.sections,
            functions={k: v for k, v in bolted.functions.items() if k != victim},
            bolted=True,
            bolt_generation=bolted.bolt_generation,
        )
        read = binary_reader(original, bolted)
        m2 = FrameMapper.build(read, [original], pruned)
        assert victim in m2.unmappable
        assert victim not in m2.functions
        # All-or-nothing: no address inside the victim stays mapped.
        info = original.functions[victim]
        for block in info.blocks:
            outcome, new, owner = m2.lookup(block.addr)
            assert outcome == UNMAPPABLE and new is None and owner == victim

    def test_source_range_restricts_spans(self, mapper):
        m, original, bolted = mapper
        read = binary_reader(original, bolted)
        m2 = FrameMapper.build(
            read, [original], bolted, source_range=(0, 1)
        )
        assert m2.addresses == {} and m2.spans == []

    def test_binary_reader_matches_sections_and_rejects_gaps(self, tiny):
        read = binary_reader(tiny.binary)
        text = tiny.binary.sections[".text"]
        assert read(text.addr, 8) == bytes(text.data[:8])
        with pytest.raises(ReproError):
            read(0x1, 4)


# ----------------------------------------------------------------------
# The retired limitation: never-returning loops get fully optimized
# ----------------------------------------------------------------------


class TestNeverReturningLoop:
    def test_first_replacement_moves_stack_live_main(self, osr_pipeline):
        _process, _binary, _ocolos, reports = osr_pipeline
        rep = reports[0].replacement
        assert rep.osr is not None
        assert rep.osr.frames_transferred > 0
        assert rep.osr.functions_pinned == []
        # The C_0 pin set is empty: OSR moved every stack-live frame.
        assert rep.pinned_stack_live == 0
        assert rep.patches.stack_live_functions == set()

    def test_continuous_generations_carry_zero_bytes(self, osr_pipeline):
        _process, _binary, _ocolos, reports = osr_pipeline
        for report in reports[1:]:
            cont = report.continuous
            assert cont.osr is not None
            assert cont.osr.frames_transferred > 0
            assert cont.osr.functions_pinned == []
            # Zero carry for mappable frames (the old C_i limitation).
            assert cont.functions_copied == 0
            assert cont.bytes_copied_forward == 0

    def test_reaches_final_generation_and_collects_old_bands(self, osr_pipeline):
        process, _binary, _ocolos, reports = osr_pipeline
        assert process.replacement_generation == len(reports)
        # Only the live generation's band remains mapped: each retired band
        # was collected the moment its frames transferred out.
        bands = band_regions(process)
        live = {
            (r.start - BOLT_TEXT_BASE) // BOLT_GEN_STRIDE + 1 for r in bands
        }
        assert live == {process.replacement_generation}

    def test_keeps_serving_after_transfers(self, osr_pipeline):
        process, _binary, _ocolos, _reports = osr_pipeline
        before = process.counters_total().transactions
        process.run(max_transactions=100)
        assert process.counters_total().transactions >= before + 100


# ----------------------------------------------------------------------
# Equivalence oracles
# ----------------------------------------------------------------------


class TestEquivalenceOracle:
    @pytest.fixture(scope="class")
    def twin_rollouts(self, loop_server, loop_spec):
        out = {}
        for superblocks in (True, False):
            cfg = FleetConfig(n_replicas=2, osr=True, superblocks=superblocks)
            controller = FleetController(loop_server, loop_spec, cfg)
            out[superblocks] = (controller, controller.run(), cfg)
        return out

    def test_superblock_twins_machine_identical_with_osr(self, twin_rollouts):
        digests = {}
        for superblocks, (controller, outcome, _cfg) in twin_rollouts.items():
            assert outcome.status == "optimized"
            assert outcome.pinned_stack_live == 0
            digests[superblocks] = [
                r.machine_digest() for r in controller.replicas
            ]
        # Counters, LBR rings, RNG position: bit-identical between the
        # superblock engine and the reference interpreter across OSR.
        assert digests[True] == digests[False]

    def test_twin_event_logs_bit_identical(self, twin_rollouts):
        a = twin_rollouts[True][1].events
        b = twin_rollouts[False][1].events
        assert a.replay_digest() == b.replay_digest()
        assert a.count("replica.osr") == 2  # one per install

    def test_semantics_match_never_optimized_reference(self, twin_rollouts,
                                                       loop_server, loop_spec):
        controller, outcome, cfg = twin_rollouts[False]
        references = unoptimized_reference_digests(
            loop_server, loop_spec, cfg, outcome.demand_schedule
        )
        for replica, reference in zip(controller.replicas, references):
            txns, _threads, _rng, counted = replica.semantic_digest()
            ref_txns, _rt, _rr, ref_counted = reference
            assert counted == ref_counted
            assert abs(txns - ref_txns) <= 1


# ----------------------------------------------------------------------
# Fleet integration
# ----------------------------------------------------------------------


class TestFleetOsr:
    def test_clean_rollout_zero_quiesce_zero_pinned(self, loop_server, loop_spec):
        cfg = FleetConfig(n_replicas=2, osr=True)
        controller = FleetController(loop_server, loop_spec, cfg)
        outcome = controller.run()
        assert outcome.status == "optimized"
        assert outcome.quiesce_wait_ticks == 0
        assert outcome.pinned_stack_live == 0
        assert outcome.osr_frames_transferred > 0
        assert outcome.stack_live_count > 0  # main is always stack-live
        for row in outcome.slo_rows():
            assert row.quiesce_wait_ticks == 0
            assert row.pinned_stack_live == 0
            assert row.stack_live_count == outcome.stack_live_count
            assert row.osr_frames_transferred == outcome.osr_frames_transferred

    def test_rollback_evacuates_bands_instead_of_waiting(
        self, loop_server, loop_spec
    ):
        cfg = FleetConfig(n_replicas=2, osr=True, pessimize_layout=True)
        controller = FleetController(loop_server, loop_spec, cfg)
        outcome = controller.run()
        assert outcome.status == "rolled_back"
        # main lives in the band after install; without evacuation the
        # never-returning loop would pin it forever.  With OSR the rollback
        # transfers it home and the band quiesces on the first attempt.
        assert outcome.events.count("replica.osr_evacuate") > 0
        assert outcome.quiesce_wait_ticks == 0
        for replica in controller.replicas:
            assert band_regions(replica.process) == []
            assert replica.process.replacement_generation == 0

    def test_cohort_serial_and_lockstep_twins_agree(self, loop_server, loop_spec):
        digests = {}
        for lockstep in (True, False):
            cfg = FleetConfig(
                n_replicas=3, osr=True, cohorts=True, lockstep=lockstep,
                pessimize_layout=True,
            )
            outcome = FleetController(loop_server, loop_spec, cfg).run()
            assert outcome.status == "rolled_back"
            digests[lockstep] = outcome.events.replay_digest()
        assert digests[True] == digests[False]

    def test_osr_off_still_pins_stack_live(self, loop_server, loop_spec):
        cfg = FleetConfig(n_replicas=2, osr=False)
        outcome = FleetController(loop_server, loop_spec, cfg).run()
        assert outcome.status == "optimized"
        assert outcome.osr_frames_transferred == 0
        # The limitation OSR retires: without it, the never-returning main
        # stays pinned on C_0 in every install.
        assert outcome.pinned_stack_live > 0


# ----------------------------------------------------------------------
# Per-band GC (regression: collection used to be all-or-nothing)
# ----------------------------------------------------------------------


class TestPerBandCollection:
    def _map_band(self, process, band):
        start = BOLT_TEXT_BASE + (band - 1) * BOLT_GEN_STRIDE
        process.address_space.map_region(
            start, 64, name=f"band{band}", executable=True
        )
        return start

    def test_band_collected_the_tick_its_last_frame_leaves(self, tiny):
        proc = tiny.process(n_threads=1)
        proc.run(max_transactions=5)
        proc.replacement_generation = 2
        b1 = self._map_band(proc, 1)
        b2 = self._map_band(proc, 2)
        thread = proc.threads[0]
        # One live return address inside band 2 only.
        thread.sp -= 8
        proc.address_space.write_u64(thread.sp, b2 + 8)
        collected, quiesced = try_collect_bands(proc, tiny.binary)
        # Band 1 is reclaimed immediately; band 2 stays pinned by its frame.
        assert collected == 1 and not quiesced
        starts = {r.start for r in band_regions(proc)}
        assert starts == {b2}
        assert proc.replacement_generation == 2
        # The frame leaves (transferred out / returned): band 2 follows.
        thread.sp += 8
        collected, quiesced = try_collect_bands(proc, tiny.binary)
        assert collected == 1 and quiesced
        assert band_regions(proc) == []
        assert proc.replacement_generation == 0

    def test_pc_in_band_pins_only_its_band(self, tiny):
        proc = tiny.process(n_threads=1)
        proc.run(max_transactions=5)
        proc.replacement_generation = 3
        b1 = self._map_band(proc, 1)
        b3 = self._map_band(proc, 3)
        thread = proc.threads[0]
        saved_pc = thread.pc
        thread.pc = b3 + 4
        try:
            collected, quiesced = try_collect_bands(proc, tiny.binary)
            assert collected == 1 and not quiesced
            assert {r.start for r in band_regions(proc)} == {b3}
        finally:
            thread.pc = saved_pc
