"""Tests for continuous optimization: C_i -> C_{i+1} with code GC."""

import pytest

from repro.bolt.optimizer import BoltOptions, run_bolt
from repro.core.continuous import ContinuousReplacer, generation_band
from repro.core.funcptr_map import FunctionPointerMap
from repro.core.replacement import CodeReplacer
from repro.errors import ReplacementError
from repro.fleet.rollback import restore_original_text, try_collect_bands
from repro.profiling.perf import PerfSession
from repro.profiling.perf2bolt import extract_profile


def profile_of(proc, binary, instructions=80_000):
    session = PerfSession(period=300, overhead=0.0)
    session.attach(proc)
    proc.run(max_instructions=instructions)
    session.detach()
    profile, _ = extract_profile(session.samples, binary)
    return profile


@pytest.fixture()
def replaced(tiny_fresh):
    """A process already running generation 1, plus its machinery."""
    bundle = tiny_fresh
    proc = bundle.process()
    proc.run(max_transactions=50)
    profile = profile_of(proc, bundle.binary)
    result1 = run_bolt(
        bundle.program, bundle.binary, profile, compiler_options=bundle.options
    )
    fp_map = FunctionPointerMap(bundle.binary)
    replacer = CodeReplacer(proc, bundle.binary, fp_map=fp_map)
    replacer.replace(result1)
    proc.run(max_transactions=100)
    return bundle, proc, fp_map, result1


def bolt_next(bundle, proc, current, generation):
    profile = profile_of(proc, current)
    return run_bolt(
        bundle.program,
        current,
        profile,
        options=BoltOptions(allow_rebolt=True),
        compiler_options=bundle.options,
        generation=generation,
        cold_reference=bundle.binary,
    )


class TestContinuousReplacement:
    def test_generation_advances_and_band_collected(self, replaced):
        bundle, proc, fp_map, result1 = replaced
        result2 = bolt_next(bundle, proc, result1.binary, 2)
        cont = ContinuousReplacer(proc, bundle.binary, fp_map)
        report = cont.replace_next(result2, result1.binary)
        assert proc.replacement_generation == 2
        assert report.regions_collected >= 1
        lo, hi = generation_band(1)
        for region in proc.address_space.regions():
            assert not (lo <= region.start < hi)

    def test_no_live_pointers_into_retired_band(self, replaced):
        bundle, proc, fp_map, result1 = replaced
        result2 = bolt_next(bundle, proc, result1.binary, 2)
        cont = ContinuousReplacer(proc, bundle.binary, fp_map)
        cont.replace_next(result2, result1.binary)
        lo, hi = generation_band(1)
        for thread in proc.threads:
            assert not (lo <= thread.pc < hi)
            addr = thread.sp
            while addr < thread.stack_base:
                ret = proc.address_space.read_u64(addr)
                assert not (lo <= ret < hi)
                addr += 8

    def test_process_keeps_transacting_after_gc(self, replaced):
        bundle, proc, fp_map, result1 = replaced
        result2 = bolt_next(bundle, proc, result1.binary, 2)
        cont = ContinuousReplacer(proc, bundle.binary, fp_map)
        cont.replace_next(result2, result1.binary)
        before = proc.counters_total().transactions
        proc.run(max_transactions=300)
        assert proc.counters_total().transactions >= before + 300

    def test_stack_live_code_copied_forward(self, replaced):
        bundle, proc, fp_map, result1 = replaced
        result2 = bolt_next(bundle, proc, result1.binary, 2)
        cont = ContinuousReplacer(proc, bundle.binary, fp_map)
        report = cont.replace_next(result2, result1.binary)
        # threads were executing generation-1 code mid-replacement, so either
        # copies were made or no thread happened to be inside C_1
        if report.pcs_rewritten or report.return_addresses_rewritten:
            assert report.functions_copied > 0
            assert report.bytes_copied_forward > 0

    def test_vtables_point_to_newest_generation(self, replaced):
        bundle, proc, fp_map, result1 = replaced
        result2 = bolt_next(bundle, proc, result1.binary, 2)
        cont = ContinuousReplacer(proc, bundle.binary, fp_map)
        cont.replace_next(result2, result1.binary)
        for vt in bundle.binary.vtables:
            for slot, func in enumerate(vt.slots):
                value = proc.address_space.read_u64(vt.slot_addr(slot))
                newest = result2.binary.functions.get(func)
                c0 = bundle.binary.functions[func]
                assert value in (newest.addr if newest else c0.addr, c0.addr)

    def test_requires_wrap_hook(self, tiny_fresh):
        proc = tiny_fresh.process()
        fp_map = FunctionPointerMap(tiny_fresh.binary)
        with pytest.raises(ReplacementError, match="wrapFuncPtrCreation"):
            ContinuousReplacer(proc, tiny_fresh.binary, fp_map)
        assert proc.wrap_hook is None  # nothing was half-installed
        assert not proc.paused

    def test_generation_mismatch_rejected(self, replaced):
        bundle, proc, fp_map, result1 = replaced
        result3 = bolt_next(bundle, proc, result1.binary, 3)  # skips gen 2
        cont = ContinuousReplacer(proc, bundle.binary, fp_map)
        with pytest.raises(ReplacementError):
            cont.replace_next(result3, result1.binary)
        assert not proc.paused

    def test_fp_invariant_violation_detected(self, replaced):
        bundle, proc, fp_map, result1 = replaced
        # corrupt a slot to point into generation 1
        moved = [
            n for n in result1.hot_functions
            if result1.binary.functions[n].addr != bundle.binary.functions[n].addr
        ]
        bad = result1.binary.functions[moved[0]].addr
        proc.address_space.write_u64(bundle.binary.fp_slot_addr(1), bad)
        result2 = bolt_next(bundle, proc, result1.binary, 2)
        cont = ContinuousReplacer(proc, bundle.binary, fp_map)
        with pytest.raises(ReplacementError):
            cont.replace_next(result2, result1.binary)

    def test_mid_replace_failure_rolls_back_bit_identical(
        self, tiny_fresh, monkeypatch
    ):
        """A patch that dies halfway through ``replace_next`` is fully
        recoverable: after the steering undo the process is bit-identical
        to a twin that rolled back from a clean generation-1 state without
        ever attempting the failed install."""
        bundle = tiny_fresh

        def gen1_pipeline():
            # single-threaded so stop positions are scheduling-independent
            proc = bundle.process(n_threads=1)
            proc.run(max_transactions=50)
            profile = profile_of(proc, bundle.binary)
            result1 = run_bolt(
                bundle.program,
                bundle.binary,
                profile,
                compiler_options=bundle.options,
            )
            fp_map = FunctionPointerMap(bundle.binary)
            CodeReplacer(proc, bundle.binary, fp_map=fp_map).replace(result1)
            proc.run(max_transactions=100)
            result2 = bolt_next(bundle, proc, result1.binary, 2)
            return proc, fp_map, result1, result2

        def digest(proc):
            threads = tuple(
                (t.tid, t.pc, t.sp, t.state.name) for t in proc.threads
            )
            counted = tuple(sorted(proc.behaviour.counted_state.items()))
            return (
                proc.counters_total().transactions,
                threads,
                proc.rng.getstate(),
                counted,
            )

        proc_a, fp_a, r1_a, r2_a = gen1_pipeline()
        proc_b, fp_b, _, _ = gen1_pipeline()

        cont = ContinuousReplacer(proc_a, bundle.binary, fp_a)

        def boom(*args, **kwargs):
            raise RuntimeError("injected mid-replace fault")

        # fires after v-tables already point at generation 2, so the
        # process is genuinely half-patched when the exception unwinds
        monkeypatch.setattr(cont, "_repatch_c0_calls", boom)
        with pytest.raises(RuntimeError, match="injected mid-replace fault"):
            cont.replace_next(r2_a, r1_a.binary)
        assert not proc_a.paused  # the finally clause resumed the target

        lo2, hi2 = generation_band(2)
        slots = [
            proc_a.address_space.read_u64(vt.slot_addr(s))
            for vt in bundle.binary.vtables
            for s in range(len(vt.slots))
        ]
        assert any(lo2 <= v < hi2 for v in slots)  # half-applied for real

        report = restore_original_text(proc_a, bundle.binary, fp_map=fp_a)
        assert report.pointer_writes > 0
        again = restore_original_text(proc_a, bundle.binary, fp_map=fp_a)
        assert again.pointer_writes == 0  # idempotent: one pass converged
        restore_original_text(proc_b, bundle.binary, fp_map=fp_b)

        for vt in bundle.binary.vtables:
            for s, func in enumerate(vt.slots):
                assert (
                    proc_a.address_space.read_u64(vt.slot_addr(s))
                    == bundle.binary.functions[func].addr
                )

        for proc in (proc_a, proc_b):
            proc.run(max_transactions=400)
        assert digest(proc_a) == digest(proc_b)

        # in-flight frames drained during serving, so both quiesce to a
        # state indistinguishable from never-optimized C_0
        for proc in (proc_a, proc_b):
            collected, quiesced = try_collect_bands(proc, bundle.binary)
            assert quiesced and collected >= 1
            assert proc.replacement_generation == 0

    def test_three_generations(self, replaced):
        bundle, proc, fp_map, result1 = replaced
        cont = ContinuousReplacer(proc, bundle.binary, fp_map)
        current = result1
        for gen in (2, 3):
            nxt = bolt_next(bundle, proc, current.binary, gen)
            cont.replace_next(nxt, current.binary)
            proc.run(max_transactions=150)
            current = nxt
        assert proc.replacement_generation == 3
        # only the newest generation band is mapped
        for retired_gen in (1, 2):
            lo, hi = generation_band(retired_gen)
            assert not any(
                lo <= r.start < hi for r in proc.address_space.regions()
            )
