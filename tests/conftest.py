"""Shared fixtures: a hand-built tiny program and a small generated server.

``tiny_program`` exercises every ISA feature (direct/virtual/indirect calls,
branches, switches, function-pointer creation) in a few dozen instructions —
most unit tests use it.  ``small_server`` is a scaled-down generator workload
for pipeline-level tests; the full-size workloads are reserved for the
benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.binary.linker import link_program
from repro.compiler.codegen import CompilerOptions
from repro.compiler.ir import (
    CondBr,
    Halt,
    IRFunction,
    Jump,
    Program,
    Ret,
    SiteKind,
    Switch,
    VTableSpec,
)
from repro.isa.instructions import alu, call, icall, load, mkfp, store, syscall, txn_mark, vcall
from repro.vm.preload import PreloadAgent
from repro.vm.process import Process
from repro.workloads.generator import WorkloadParams, build_workload
from repro.workloads.inputs import InputSpec


class TinyBundle:
    """A tiny program plus its site handles and a default input."""

    def __init__(self, jump_tables: bool = False, instrument_fp: bool = True) -> None:
        prog = Program(name="tiny", entry="main", fp_slot_count=4)
        self.sites = {}

        # helper functions with a conditional hot/cold structure
        for i in range(4):
            f = IRFunction(f"helper{i}")
            b0, b1, b2, b3 = (f.new_block() for _ in range(4))
            site = prog.sites.allocate(SiteKind.BRANCH, f.name)
            self.sites[f"helper{i}.branch"] = site
            b0.body = [alu(), load(1)]
            b0.terminator = CondBr(site=site, taken=2, fallthrough=1)
            b1.body = [alu()] * 5
            b1.terminator = Jump(3)
            b2.body = [alu(), alu(), store(1)]
            b2.terminator = Jump(3)
            b3.body = [alu()]
            b3.terminator = Ret()
            prog.add_function(f)

        # a leaf used via function pointers
        leaf = IRFunction("leaf")
        lb = leaf.new_block()
        lb.body = [alu(), alu()]
        lb.terminator = Ret()
        prog.add_function(leaf)

        # virtual method implementations
        for i in range(2):
            vm = IRFunction(f"Virt{i}::m")
            vb = vm.new_block()
            vb.body = [alu(), call(f"helper{i}")]
            vb.terminator = Ret()
            prog.add_function(vm)
        prog.vtables = [
            VTableSpec(class_id=0, slots=["Virt0::m"]),
            VTableSpec(class_id=1, slots=["Virt1::m"]),
        ]

        # a switch-using function
        sw = IRFunction("switchy")
        s0 = sw.new_block()
        targets = []
        for k in range(3):
            blk = sw.new_block()
            blk.body = [alu()]
            blk.terminator = Jump(4)
            targets.append(blk.bb_id)
        end = sw.new_block()
        end.body = [alu()]
        end.terminator = Ret()
        switch_site = prog.sites.allocate(SiteKind.SWITCH, "switchy", n_cases=3)
        self.sites["switchy.switch"] = switch_site
        s0.body = [alu()]
        s0.terminator = Switch(site=switch_site, targets=tuple(targets))
        prog.add_function(sw)

        # main loop
        main = IRFunction("main")
        m0 = main.new_block()
        vsite = prog.sites.allocate(SiteKind.VCALL, "main")
        isite = prog.sites.allocate(SiteKind.ICALL, "main")
        self.sites["main.vcall"] = vsite
        self.sites["main.icall"] = isite
        m0.body = [
            syscall(0),
            mkfp("leaf", 0),
            call("helper2"),
            call("switchy"),
            vcall(vsite, 0),
            icall(isite),
            txn_mark(),
        ]
        m0.terminator = Jump(0)
        prog.add_function(main)

        prog.fp_init = {0: "leaf", 1: "helper0", 2: "helper1", 3: "leaf"}

        self.program = prog
        self.options = CompilerOptions(
            jump_tables=jump_tables, instrument_fp=instrument_fp
        )
        self.binary = link_program(prog, options=self.options)

    def input_spec(
        self,
        name: str = "default",
        branch_p: float = 0.85,
        vcall_mix=None,
        icall_mix=None,
        switch_mix=None,
    ) -> InputSpec:
        """An input spec covering every site of the tiny program."""
        spec = InputSpec(name=name)
        for key, site in self.sites.items():
            if key.endswith(".branch"):
                spec.branch_bias[site] = branch_p
        spec.vcall_mix[self.sites["main.vcall"]] = vcall_mix or [(0, 3.0), (1, 1.0)]
        spec.icall_mix[self.sites["main.icall"]] = icall_mix or [(0, 1.0)]
        spec.switch_mix[self.sites["switchy.switch"]] = switch_mix or [5.0, 3.0, 1.0]
        spec.syscall_cycles[0] = 50.0
        return spec

    def process(self, n_threads: int = 2, seed: int = 7, with_agent: bool = True, **input_kwargs) -> Process:
        """A fresh process running the tiny program."""
        proc = Process(
            self.binary,
            self.program,
            self.input_spec(**input_kwargs),
            n_threads=n_threads,
            seed=seed,
        )
        if with_agent:
            PreloadAgent(proc)
        return proc


@pytest.fixture()
def fresh_engine():
    """A private, empty artifact store + workload registry for one test.

    Yields the fresh :class:`~repro.engine.store.ArtifactStore`; resets again
    afterwards so no engine state leaks into other tests.
    """
    from repro import engine

    yield engine.reset()
    engine.reset()


@pytest.fixture(scope="session")
def tiny() -> TinyBundle:
    """Session-wide tiny program (binary is immutable; processes are not)."""
    return TinyBundle()


@pytest.fixture()
def tiny_fresh() -> TinyBundle:
    """A private tiny program for tests that mutate program/binary state."""
    return TinyBundle()


@pytest.fixture(scope="session")
def tiny_with_jump_tables() -> TinyBundle:
    """Tiny program compiled WITH jump tables (non-OCOLOS-compatible)."""
    return TinyBundle(jump_tables=True)


def small_server_params(**overrides) -> WorkloadParams:
    """Parameters for a fast pipeline-scale server workload."""
    defaults = dict(
        name="small_server",
        n_work_functions=60,
        n_utility_functions=12,
        n_callback_functions=8,
        n_op_types=3,
        op_names=["read_op", "write_op", "scan_op"],
        steps_per_op=(8, 14),
        n_subsystems=3,
        shared_fraction=0.4,
        parse_blocks=8,
        n_data_classes=4,
        data_vtable_slots=2,
        vcall_step_fraction=0.2,
        icall_share_per_op=[0.05, 0.15, 0.05],
        mem_class_per_op=[1, 1, 2],
        creates_fp_per_op=[False, True, False],
        syscall_cycles=80.0,
        n_threads=2,
        scale=1.0,
        seed=99,
    )
    defaults.update(overrides)
    return WorkloadParams(**defaults)


@pytest.fixture(scope="session")
def small_server():
    """Session-wide small generated server workload."""
    return build_workload(small_server_params())


@pytest.fixture(scope="session")
def small_inputs(small_server):
    """Read-ish and write-ish inputs for the small server."""
    return {
        "readish": small_server.make_input(
            "readish", 0.1, {"read_op": 8.0, "scan_op": 1.0}
        ),
        "writish": small_server.make_input(
            "writish", 0.9, {"write_op": 4.0, "read_op": 1.0}
        ),
    }
