"""Unit tests for instruction definitions."""

import pytest

from repro.isa.instructions import (
    INSTRUCTION_SIZES,
    Opcode,
    TERMINATORS,
    alu,
    br_cond,
    call,
    halt,
    icall,
    jmp,
    jtab,
    load,
    mkfp,
    nop,
    ret,
    store,
    syscall,
    txn_mark,
    vcall,
)


def test_every_opcode_has_a_size():
    for op in Opcode:
        assert op in INSTRUCTION_SIZES
        assert INSTRUCTION_SIZES[op] >= 1


def test_opcode_values_are_unique():
    values = [int(op) for op in Opcode]
    assert len(values) == len(set(values))


@pytest.mark.parametrize(
    "factory,op",
    [
        (nop, Opcode.NOP),
        (alu, Opcode.ALU),
        (load, Opcode.LOAD),
        (store, Opcode.STORE),
        (txn_mark, Opcode.TXN_MARK),
        (ret, Opcode.RET),
        (halt, Opcode.HALT),
        (syscall, Opcode.SYSCALL),
    ],
)
def test_simple_factories(factory, op):
    insn = factory()
    assert insn.op == op
    assert insn.size == INSTRUCTION_SIZES[op]


def test_branch_factory_fields():
    insn = br_cond(7, "f#3", invert=True)
    assert insn.op == Opcode.BR_COND
    assert insn.site == 7
    assert insn.target == "f#3"
    assert insn.invert


def test_call_and_jmp_targets():
    assert call("f").target == "f"
    assert jmp(0x1000).target == 0x1000


def test_vcall_fields():
    insn = vcall(9, 2)
    assert insn.site == 9
    assert insn.slot == 2


def test_icall_site():
    assert icall(4).site == 4


def test_jtab_table_target():
    insn = jtab(3, "jt.f#0")
    assert insn.target == "jt.f#0"


def test_mkfp_fields():
    insn = mkfp("callee", 5, wrapped=True)
    assert insn.slot == 5
    assert insn.target == "callee"
    assert insn.wrapped


def test_terminator_classification():
    assert br_cond(1, 0).is_terminator
    assert jmp(0).is_terminator
    assert ret().is_terminator
    assert halt().is_terminator
    assert call("f").is_terminator  # call ends a decode run
    assert not alu().is_terminator
    assert not mkfp("f", 0).is_terminator
    assert not txn_mark().is_terminator


def test_terminator_set_contents():
    assert Opcode.SYSCALL not in TERMINATORS  # decode-run boundary, not CFG
    assert Opcode.JTAB in TERMINATORS


def test_load_store_memory_class():
    assert load(3).weight == 3
    assert store(2).weight == 2


def test_alu_weight_default_zero():
    assert alu().weight == 0
