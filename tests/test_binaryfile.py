"""Tests for the binary container dataclasses and the memory map."""

import pytest

from repro.binary.binaryfile import (
    BOLT_GEN_STRIDE,
    BOLT_TEXT_BASE,
    DATA_BASE,
    Fragment,
    Layout,
    RODATA_BASE,
    Section,
    SectionLayout,
    STACK_REGION_BASE,
    TEXT_BASE,
    bolt_text_base,
)


class TestMemoryMap:
    def test_regions_ordered_and_disjoint(self):
        assert TEXT_BASE < BOLT_TEXT_BASE < RODATA_BASE < DATA_BASE < STACK_REGION_BASE

    def test_generation_bases_stride(self):
        assert bolt_text_base(1) == BOLT_TEXT_BASE
        assert bolt_text_base(2) == BOLT_TEXT_BASE + BOLT_GEN_STRIDE
        assert bolt_text_base(3) - bolt_text_base(2) == BOLT_GEN_STRIDE

    def test_generation_zero_rejected(self):
        with pytest.raises(ValueError):
            bolt_text_base(0)

    def test_generations_fit_below_rodata(self):
        assert bolt_text_base(8) + BOLT_GEN_STRIDE <= RODATA_BASE


class TestSection:
    def test_contains_and_end(self):
        s = Section(name=".text", addr=0x1000, data=b"\x00" * 16)
        assert s.end == 0x1010
        assert s.contains(0x1000)
        assert s.contains(0x100F)
        assert not s.contains(0x1010)
        assert not s.contains(0xFFF)


class TestBinaryQueries:
    def test_symbol_lookup(self, tiny):
        assert tiny.binary.symbol("main") == tiny.binary.functions["main"].addr

    def test_function_at(self, tiny):
        info = tiny.binary.functions["helper1"]
        found = tiny.binary.function_at(info.addr + 2)
        assert found is not None and found.name == "helper1"
        assert tiny.binary.function_at(0x10) is None

    def test_function_block_lookup(self, tiny):
        info = tiny.binary.functions["helper0"]
        block = info.block(2)
        assert block.label == "helper0#2"
        with pytest.raises(KeyError):
            info.block(99)

    def test_function_size_sums_blocks(self, tiny):
        info = tiny.binary.functions["helper0"]
        assert info.size == sum(b.size for b in info.blocks)

    def test_fp_slot_addr_bounds(self, tiny):
        binary = tiny.binary
        assert binary.fp_slot_addr(0) == binary.fp_table_addr
        assert binary.fp_slot_addr(1) == binary.fp_table_addr + 8
        with pytest.raises(IndexError):
            binary.fp_slot_addr(binary.fp_slot_count)
        with pytest.raises(IndexError):
            binary.fp_slot_addr(-1)

    def test_text_size_counts_executable_only(self, tiny):
        binary = tiny.binary
        assert binary.text_size() == len(binary.sections[".text"].data)

    def test_block_index_complete(self, tiny):
        index = tiny.binary.block_index()
        total_blocks = sum(len(f.blocks) for f in tiny.binary.functions.values())
        assert len(index) == total_blocks


class TestLayoutTypes:
    def test_fragment_count_and_functions(self):
        layout = Layout(
            sections=[
                SectionLayout(
                    name=".a",
                    base=0x1000,
                    fragments=[
                        Fragment("f", (0, 1)),
                        Fragment("g", (0,)),
                    ],
                ),
                SectionLayout(
                    name=".b",
                    base=0x2000,
                    fragments=[Fragment("f", (2,))],
                ),
            ]
        )
        assert layout.fragment_count() == 3
        assert layout.functions() == ["f", "g"]


class TestJumpTableExecution:
    """Binaries WITH jump tables (BOLT/baseline flavour) must execute."""

    def test_jtab_dispatch_runs(self, tiny_with_jump_tables):
        proc = tiny_with_jump_tables.process(with_agent=False)
        delta = proc.run(max_transactions=200)
        assert delta.transactions >= 200

    def test_jtab_follows_case_distribution(self, tiny_with_jump_tables):
        bundle = tiny_with_jump_tables
        # force case 2 always: only blocks on that path execute
        proc_a = bundle.process(with_agent=False, switch_mix=[0.0, 0.0, 1.0], seed=3)
        proc_b = bundle.process(with_agent=False, switch_mix=[1.0, 0.0, 0.0], seed=3)
        da = proc_a.run(max_transactions=200)
        db = proc_b.run(max_transactions=200)
        # different cases -> different executed-block mixes -> different
        # instruction counts (cases have distinct bodies)
        assert da.instructions != db.instructions or da.cycles != db.cycles

    def test_bolt_regenerates_jump_tables(self, tiny_with_jump_tables):
        from repro.bolt.optimizer import run_bolt
        from repro.profiling.perf import PerfSession
        from repro.profiling.perf2bolt import extract_profile
        from repro.vm.process import Process

        bundle = tiny_with_jump_tables
        proc = bundle.process()
        proc.run(max_transactions=50)
        session = PerfSession(period=300, overhead=0.0)
        session.attach(proc)
        proc.run(max_instructions=60_000)
        session.detach()
        profile, _ = extract_profile(session.samples, bundle.binary)
        result = run_bolt(
            bundle.program, bundle.binary, profile, compiler_options=bundle.options
        )
        # new generation gets its own table region; the original stays valid
        assert ".rodata" in result.binary.sections
        if "switchy" in result.hot_functions:
            assert ".rodata.bolt1" in result.binary.sections
        # the BOLTed binary executes standalone
        p2 = Process(result.binary, bundle.program, bundle.input_spec(), n_threads=2, seed=5)
        assert p2.run(max_transactions=200).transactions >= 200
