#!/usr/bin/env python
"""Pause-aware load balancing during an OCOLOS cluster rollout (paper §IV-D).

The paper's answer to the stop-the-world pause hurting tail latency: tell the
load balancer when a node is being optimized and route around it.  This demo
measures the MySQL-like pipeline's phase rates, rolls OCOLOS across a 4-node
cluster under both balancer policies, and prints the p99 story.

Run:  python examples/cluster_rollout.py
"""

from repro.harness.cluster import simulate_rollout
from repro.harness.timeline import fig7_timeline


def main() -> None:
    print("measuring single-node phase rates (full OCOLOS pipeline) ...")
    timeline = fig7_timeline()
    rates = dict(
        tps_original=timeline.tps_original,
        tps_profiling=timeline.tps_profiling,
        tps_contention=timeline.tps_contention,
        tps_optimized=timeline.tps_optimized,
        pause_seconds=timeline.pause_seconds,
        profile_seconds=4.0,
        background_seconds=min(8.0, timeline.costs.background_seconds),
    )
    print(f"  node rates: {timeline.tps_original:,.0f} -> "
          f"{timeline.tps_optimized:,.0f} tps, pause "
          f"{timeline.pause_seconds * 1000:.0f} ms\n")

    for drain in (False, True):
        result = simulate_rollout(**rates, n_nodes=4, drain=drain)
        label = "pause-aware drain" if drain else "unaware balancer"
        print(f"{label:20s}: baseline p99 {result.baseline_p99_ms:7.2f} ms | "
              f"worst during rollout {result.worst_p99_ms:8.2f} ms | "
              f"after rollout {result.steady_p99_ms:7.2f} ms")

    print("\nrouting around the announced pause keeps the tail flat while the"
          "\ncluster converges to the optimized layout (paper §IV-D).")


if __name__ == "__main__":
    main()
