#!/usr/bin/env python
"""Continuous optimization under an input shift — OCOLOS's motivating
scenario (paper §I and §IV-C).

1. The MySQL-like server runs the write-heavy ``oltp_write_only`` mix and
   OCOLOS optimizes for it (generation 1).
2. The workload shifts to ``oltp_read_only`` (think: business hours start).
   The generation-1 layout was trained on the wrong input, so it leaves
   performance on the table — exactly the staleness problem offline PGO
   cannot escape.
3. OCOLOS re-profiles *online* and replaces generation 1 with generation 2
   (garbage-collecting the stale code), recovering the oracle-quality layout.

This exercises the paper's §IV-C machinery (stack-live code copying, return-
address rewriting, code GC) that the authors could not evaluate because real
BOLT refuses to process a BOLTed binary — our BOLT allows it.

Run:  python examples/input_shift.py
"""

from repro.harness.runner import launch, measure, run_ocolos_pipeline
from repro.workloads.mysql import mysql_inputs, mysql_like


def main() -> None:
    workload = mysql_like()
    inputs = mysql_inputs(workload)
    write_mix = inputs["oltp_write_only"]
    read_mix = inputs["oltp_read_only"]

    print("phase 1: serving oltp_write_only; OCOLOS optimizes for it ...")
    process, ocolos, r1 = run_ocolos_pipeline(workload, write_mix, seed=3)
    process.run(max_transactions=600)
    write_opt = measure(process, transactions=400, warmup=0)
    print(f"  generation {r1.generation}: {write_opt.tps:,.0f} tps on the write mix")

    print("\nphase 2: the input shifts to oltp_read_only ...")
    process.set_input(read_mix)
    process.run(max_transactions=600)
    stale = measure(process, transactions=400, warmup=0)
    print(f"  stale generation-1 layout: {stale.tps:,.0f} tps "
          f"(L1i MPKI {stale.counters.l1i_mpki:.1f})")

    print("\nphase 3: OCOLOS re-profiles online and replaces C_1 with C_2 ...")
    r2 = ocolos.optimize_once()
    cont = r2.continuous
    print(f"  generation {r2.generation}: copied {cont.functions_copied} stack-live "
          f"functions forward, rewrote {cont.return_addresses_rewritten} return "
          f"addresses and {cont.pcs_rewritten} PCs, collected "
          f"{cont.regions_collected} stale code regions")
    process.run(max_transactions=600)
    fresh = measure(process, transactions=400, warmup=0)
    print(f"  fresh layout: {fresh.tps:,.0f} tps "
          f"(L1i MPKI {fresh.counters.l1i_mpki:.1f})")

    # reference: what an oracle read_only layout achieves from scratch
    reference = launch(workload, read_mix, seed=3, with_agent=False)
    original = measure(reference, transactions=400)
    print(f"\n  original binary on the read mix: {original.tps:,.0f} tps")
    print(f"  stale layout speedup : {stale.tps / original.tps:.2f}x")
    print(f"  re-optimized speedup : {fresh.tps / original.tps:.2f}x")


if __name__ == "__main__":
    main()
