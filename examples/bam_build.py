#!/usr/bin/env python
"""BAM: transparently accelerating a from-scratch compiler build (paper §V-A).

Runs a scaled clang-like build (many short compiler invocations under a
``make -j`` scheduler).  BAM profiles the first few invocations, BOLTs the
compiler in the background, and switches later ``exec`` calls to the
optimized binary — no changes to the build system, mirroring the paper's
``LD_PRELOAD=bam.so make`` deployment.

Run:  python examples/bam_build.py
"""

from repro.binary.linker import link_program
from repro.core.bam import BamConfig, BatchAcceleratorMode
from repro.workloads.clangbuild import clang_build


def main() -> None:
    print("building the clang-like compiler and the build workload ...")
    build = clang_build(n_invocations=120, parallel_jobs=8)
    compiler = build.compiler
    binary = link_program(compiler.program, options=compiler.options)

    config = BamConfig(target_binary=binary.name, profiles_needed=5)
    bam = BatchAcceleratorMode(compiler, binary, config)

    print("running the baseline build (original compiler throughout) ...")
    baseline = bam.baseline_build_seconds(build)

    print("running the build under BAM ...")
    report = bam.run_build(build)
    counts = report.mode_counts()

    print(f"\n  invocations        : {build.n_invocations} "
          f"(-j{build.parallel_jobs})")
    print(f"  profiled           : {counts.get('profiled', 0)}")
    print(f"  original (waiting) : {counts.get('original', 0)}")
    print(f"  optimized          : {counts.get('optimized', 0)}")
    print(f"  BOLT ready at      : {report.bolt_ready_at:.3f}s "
          f"of {report.total_seconds:.3f}s")
    print(f"\n  baseline build     : {baseline:.3f}s")
    print(f"  BAM build          : {report.total_seconds:.3f}s")
    print(f"  speedup            : {baseline / report.total_seconds:.2f}x "
          "(paper: up to 1.14x on a full clang build)")


if __name__ == "__main__":
    main()
