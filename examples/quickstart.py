#!/usr/bin/env python
"""Quickstart: optimize a running server with OCOLOS in ~30 lines.

Builds the MySQL-like workload, launches it under the Sysbench-like
``oltp_read_only`` input, measures steady-state throughput, runs one full
OCOLOS cycle (profile -> BOLT -> inject -> patch -> resume), and measures
again.  Expect a ~1.4x speedup, mirroring the paper's headline MySQL result.

Run:  python examples/quickstart.py
"""

from repro.harness.runner import launch, measure, run_ocolos_pipeline
from repro.workloads.mysql import mysql_inputs, mysql_like


def main() -> None:
    print("building the MySQL-like workload ...")
    workload = mysql_like()
    spec = mysql_inputs(workload)["oltp_read_only"]

    print("measuring the original binary ...")
    baseline_process = launch(workload, spec, seed=2, with_agent=False)
    baseline = measure(baseline_process, transactions=400)
    print(f"  original: {baseline.tps:,.0f} tps   "
          f"L1i MPKI {baseline.counters.l1i_mpki:.1f}   "
          f"taken branches/k-instr {baseline.counters.taken_branch_pki:.0f}")

    print("running OCOLOS (profile -> BOLT -> inject -> patch -> resume) ...")
    process, ocolos, report = run_ocolos_pipeline(workload, spec, seed=2)
    print(f"  profiled {report.samples} LBR samples, "
          f"BOLT optimized {len(report.bolt.hot_functions)} hot functions, "
          f"patched {report.replacement.pointer_writes} pointers "
          f"({report.replacement.patches.vtable_slots_patched} v-table slots), "
          f"pause {report.pause_seconds * 1000:.1f} ms")

    process.run(max_transactions=600)  # settle into the new layout
    optimized = measure(process, transactions=400, warmup=0)
    print(f"  OCOLOS:   {optimized.tps:,.0f} tps   "
          f"L1i MPKI {optimized.counters.l1i_mpki:.1f}   "
          f"taken branches/k-instr {optimized.counters.taken_branch_pki:.0f}")
    print(f"\nspeedup: {optimized.tps / baseline.tps:.2f}x "
          "(paper: up to 1.41x on MySQL read_only)")


if __name__ == "__main__":
    main()
