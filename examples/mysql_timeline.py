#!/usr/bin/env python
"""Reproduce the Fig 7 experience: throughput before, during and after
online code replacement on the MySQL-like workload.

Prints the per-second throughput series with region annotations and the p95
latency summary (warm-up / worst during optimization / optimized), matching
the structure of the paper's Fig 7 narrative: ~4,200 tps warm-up, a dip
during profiling and BOLT, a sub-second pause, then ~1.4x throughput.

Run:  python examples/mysql_timeline.py
"""

from repro.harness.timeline import fig7_timeline


def main() -> None:
    print("measuring phase throughputs (this executes the full pipeline) ...\n")
    result = fig7_timeline()

    bounds = dict(result.region_bounds)
    for point in result.points:
        label = bounds.get(point.second)
        marker = f"   <-- {label}" if label else ""
        print(f"t={point.second:3d}s  {point.tps:7,.0f} tps  "
              f"p95={point.p95_ms:6.2f} ms{marker}")

    warm, worst, optimized = result.p95_summary()
    print("\nsummary:")
    print(f"  original     : {result.tps_original:8,.0f} tps")
    print(f"  profiling    : {result.tps_profiling:8,.0f} tps")
    print(f"  under BOLT   : {result.tps_contention:8,.0f} tps "
          f"(perf2bolt {result.costs.perf2bolt_seconds:.1f}s + "
          f"llvm-bolt {result.costs.llvm_bolt_seconds:.1f}s)")
    print(f"  pause        : {result.pause_seconds * 1000:8.1f} ms stop-the-world")
    print(f"  optimized    : {result.tps_optimized:8,.0f} tps "
          f"({result.speedup:.2f}x)")
    print(f"  p95 latency  : {warm:.2f} ms warm-up -> {worst:.2f} ms worst "
          f"during optimization -> {optimized:.2f} ms optimized")


if __name__ == "__main__":
    main()
